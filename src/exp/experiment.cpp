#include "exp/experiment.hpp"

#include <cmath>
#include <limits>

#include "exp/analysis.hpp"
#include "snap/snapshot.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace es::exp {

namespace {

/// One config spine: the options carry the EngineConfig verbatim; only
/// the machine shape (owned by the workload) and the name-derived ECC
/// flags are overridden.
sched::EngineConfig engine_config(const workload::Workload& workload,
                                  const core::Algorithm& algo,
                                  const core::AlgorithmOptions& options) {
  sched::EngineConfig config = options.engine;
  config.machine_procs = workload.machine_procs;
  config.granularity = workload.granularity;
  config.process_eccs = algo.process_eccs;
  config.allow_running_resize = algo.allow_running_resize;
  return config;
}

/// Streaming variant: the machine shape comes from the source.
sched::EngineConfig engine_config(const workload::JobSource& source,
                                  const core::Algorithm& algo,
                                  const core::AlgorithmOptions& options) {
  sched::EngineConfig config = options.engine;
  config.machine_procs = source.machine_procs();
  config.granularity = source.granularity();
  config.process_eccs = algo.process_eccs;
  config.allow_running_resize = algo.allow_running_resize;
  return config;
}

}  // namespace

sched::SimulationResult run_workload(const workload::Workload& workload,
                                     const std::string& algorithm,
                                     const core::AlgorithmOptions& options) {
  // make_algorithm throws UnknownAlgorithmError for bad names, so the
  // policy is always valid here.
  core::Algorithm algo = core::make_algorithm(algorithm, options);
  return sched::simulate(engine_config(workload, algo, options), *algo.policy,
                         workload);
}

sched::SimulationResult run_workload(const workload::Workload& workload,
                                     const std::string& algorithm,
                                     const core::AlgorithmOptions& options,
                                     sched::EngineObserver* observer,
                                     sched::HookMask mask) {
  core::Algorithm algo = core::make_algorithm(algorithm, options);
  sched::Engine engine(engine_config(workload, algo, options), *algo.policy);
  if (observer != nullptr) engine.add_observer(observer, mask);
  return engine.run(workload);
}

sched::SimulationResult run_source(workload::JobSource& source,
                                   const std::string& algorithm,
                                   const core::AlgorithmOptions& options) {
  core::Algorithm algo = core::make_algorithm(algorithm, options);
  sched::Engine engine(engine_config(source, algo, options), *algo.policy);
  return engine.run_streamed(source);
}

sched::SimulationResult run_workload_prepared(
    const workload::Workload& workload, const std::string& algorithm,
    const core::AlgorithmOptions& options,
    const std::function<void(sched::Engine&)>& prepare) {
  core::Algorithm algo = core::make_algorithm(algorithm, options);
  sched::Engine engine(engine_config(workload, algo, options), *algo.policy);
  if (prepare) prepare(engine);
  return engine.run(workload);
}

sched::SimulationResult resume_workload(const workload::Workload& workload,
                                        const std::string& algorithm,
                                        const core::AlgorithmOptions& options,
                                        snap::SnapshotReader& reader) {
  core::Algorithm algo = core::make_algorithm(algorithm, options);
  sched::Engine engine(engine_config(workload, algo, options), *algo.policy);
  return engine.resume(workload, reader);
}

sched::SimulationResult run_once(const RunSpec& spec) {
  const workload::Workload workload = workload::generate(spec.workload);
  return run_workload(workload, spec.algorithm, spec.options);
}

Aggregate run_replicated(RunSpec spec, int replications) {
  ES_EXPECTS(replications > 0);
  Aggregate aggregate;
  aggregate.algorithm = spec.algorithm;
  aggregate.replications = replications;

  // Replications are independent by construction: seed i is derived up
  // front (base_seed + i) and each run writes its own pre-sized slot, so
  // fanning them across the pool changes nothing but wall time.  The
  // statistics are then folded serially in index order — the identical
  // floating-point operation order to the old serial loop, which keeps
  // parallel results byte-for-byte equal to `--jobs 1`.
  const std::uint64_t base_seed = spec.workload.seed;
  std::vector<sched::SimulationResult> results(
      static_cast<std::size_t>(replications));
  util::parallel_for_each(
      static_cast<std::size_t>(replications), [&](std::size_t i) {
        RunSpec replication = spec;
        replication.workload.seed = base_seed + i;
        results[i] = run_once(replication);
      });

  util::RunningStats util_stats, wait_stats, slowdown_stats, load_stats;
  util::RunningStats dedicated_delay_stats;
  for (const sched::SimulationResult& result : results) {
    util_stats.add(result.utilization);
    wait_stats.add(result.mean_wait);
    slowdown_stats.add(result.slowdown);
    load_stats.add(result.offered_load);
    dedicated_delay_stats.add(result.mean_dedicated_delay);
    aggregate.ecc_processed += result.ecc.processed;
    aggregate.dp += result.perf.dp;
    aggregate.events += result.perf.events;
    aggregate.cycle += result.perf.cycle;
  }
  aggregate.utilization = util_stats.mean();
  aggregate.mean_wait = wait_stats.mean();
  aggregate.slowdown = slowdown_stats.mean();
  aggregate.utilization_stddev = util_stats.stddev();
  aggregate.mean_wait_stddev = wait_stats.stddev();
  aggregate.utilization_ci95 = confidence_half_width_95(util_stats);
  aggregate.mean_wait_ci95 = confidence_half_width_95(wait_stats);
  aggregate.offered_load = load_stats.mean();
  aggregate.mean_dedicated_delay = dedicated_delay_stats.mean();
  return aggregate;
}

int optimal_skip_count(const workload::GeneratorConfig& config, int cs_min,
                       int cs_max, int replications) {
  ES_EXPECTS(cs_min >= 1 && cs_min <= cs_max);
  // Every C_s candidate is independent; evaluate them all across the pool
  // and pick the winner serially.  The strict `<` keeps the serial loop's
  // tie-break: the lowest C_s reaching the best wait wins.
  const std::size_t count = static_cast<std::size_t>(cs_max - cs_min + 1);
  std::vector<double> waits(count);
  util::parallel_for_each(count, [&](std::size_t i) {
    RunSpec spec;
    spec.workload = config;
    spec.algorithm = "Delayed-LOS";
    spec.options.max_skip_count = cs_min + static_cast<int>(i);
    waits[i] = run_replicated(spec, replications).mean_wait;
  });
  int best_cs = cs_min;
  double best_wait = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    if (waits[i] < best_wait) {
      best_wait = waits[i];
      best_cs = cs_min + static_cast<int>(i);
    }
  }
  return best_cs;
}

}  // namespace es::exp
