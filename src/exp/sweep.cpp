#include "exp/sweep.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace es::exp {

const Aggregate* Sweep::find(const SweepPoint& point,
                             const std::string& algorithm) const {
  const auto own = point.by_algorithm.find(algorithm);
  if (own != point.by_algorithm.end()) return &own->second;
  const auto shared = references.find(algorithm);
  if (shared != references.end()) return &shared->second;
  return nullptr;
}

std::map<std::string, const Aggregate*> Sweep::merged(
    const SweepPoint& point) const {
  std::map<std::string, const Aggregate*> view;
  for (const auto& [name, aggregate] : references) view[name] = &aggregate;
  for (const auto& [name, aggregate] : point.by_algorithm)
    view[name] = &aggregate;  // a per-point series shadows a reference
  return view;
}

Sweep load_sweep(const workload::GeneratorConfig& base,
                 const std::vector<double>& loads,
                 const std::vector<std::string>& algorithms,
                 const core::AlgorithmOptions& options, int replications) {
  Sweep sweep;
  sweep.x_label = "load";

  // Every (load, algorithm) cell is an independent simulation batch; fan
  // them all across the pool at once and assemble the points serially in
  // index order afterwards, so the result is identical to the nested serial
  // loops no matter how many workers run.
  const std::size_t n_algorithms = algorithms.size();
  std::vector<std::vector<Aggregate>> cells(
      loads.size(), std::vector<Aggregate>(n_algorithms));
  util::parallel_for_each(
      loads.size() * n_algorithms, [&](std::size_t task) {
        const std::size_t li = task / n_algorithms;
        const std::size_t ai = task % n_algorithms;
        RunSpec spec;
        spec.workload = base;
        spec.workload.target_load = loads[li];
        spec.algorithm = algorithms[ai];
        spec.options = options;
        cells[li][ai] = run_replicated(spec, replications);
      });

  for (std::size_t li = 0; li < loads.size(); ++li) {
    SweepPoint point;
    point.x = loads[li];
    for (std::size_t ai = 0; ai < n_algorithms; ++ai)
      point.by_algorithm[algorithms[ai]] = std::move(cells[li][ai]);
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

Sweep skip_count_sweep(const workload::GeneratorConfig& base, int cs_min,
                       int cs_max,
                       const std::vector<std::string>& reference_algorithms,
                       int lookahead, int replications) {
  ES_EXPECTS(cs_min >= 1 && cs_min <= cs_max);
  Sweep sweep;
  sweep.x_label = "C_s";

  // Reference algorithms do not depend on C_s, so they run once and land in
  // Sweep::references — the flat lines of the paper's figures 5-6 — instead
  // of being copied into every point.  The references and the C_s points
  // are all independent, so one flat task list covers both.
  const std::size_t n_references = reference_algorithms.size();
  const std::size_t n_points = static_cast<std::size_t>(cs_max - cs_min + 1);
  std::vector<Aggregate> reference_results(n_references);
  std::vector<Aggregate> delayed_results(n_points);
  util::parallel_for_each(n_references + n_points, [&](std::size_t task) {
    RunSpec spec;
    spec.workload = base;
    spec.options.lookahead = lookahead;
    if (task < n_references) {
      spec.algorithm = reference_algorithms[task];
      reference_results[task] = run_replicated(spec, replications);
    } else {
      spec.algorithm = "Delayed-LOS";
      spec.options.max_skip_count =
          cs_min + static_cast<int>(task - n_references);
      delayed_results[task - n_references] = run_replicated(spec, replications);
    }
  });

  for (std::size_t i = 0; i < n_references; ++i)
    sweep.references[reference_algorithms[i]] =
        std::move(reference_results[i]);
  for (std::size_t i = 0; i < n_points; ++i) {
    SweepPoint point;
    point.x = cs_min + static_cast<int>(i);
    point.by_algorithm["Delayed-LOS"] = std::move(delayed_results[i]);
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

Improvement max_improvement(const Sweep& sweep, const std::string& candidate,
                            const std::string& baseline) {
  Improvement improvement;
  bool any = false;
  for (const SweepPoint& point : sweep.points) {
    const Aggregate* c = sweep.find(point, candidate);
    const Aggregate* b = sweep.find(point, baseline);
    ES_EXPECTS(c != nullptr);
    ES_EXPECTS(b != nullptr);
    improvement.utilization =
        std::max(improvement.utilization,
                 util::improvement_higher_better(b->utilization, c->utilization));
    improvement.wait = std::max(
        improvement.wait,
        util::improvement_lower_better(b->mean_wait, c->mean_wait));
    improvement.slowdown =
        std::max(improvement.slowdown,
                 util::improvement_lower_better(b->slowdown, c->slowdown));
    any = true;
  }
  ES_EXPECTS(any);
  return improvement;
}

}  // namespace es::exp
