#include "exp/sweep.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace es::exp {

Sweep load_sweep(const workload::GeneratorConfig& base,
                 const std::vector<double>& loads,
                 const std::vector<std::string>& algorithms,
                 const core::AlgorithmOptions& options, int replications) {
  Sweep sweep;
  sweep.x_label = "load";
  for (double load : loads) {
    SweepPoint point;
    point.x = load;
    for (const std::string& algorithm : algorithms) {
      RunSpec spec;
      spec.workload = base;
      spec.workload.target_load = load;
      spec.algorithm = algorithm;
      spec.options = options;
      point.by_algorithm[algorithm] = run_replicated(spec, replications);
    }
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

Sweep skip_count_sweep(const workload::GeneratorConfig& base, int cs_min,
                       int cs_max,
                       const std::vector<std::string>& reference_algorithms,
                       int lookahead, int replications) {
  ES_EXPECTS(cs_min >= 1 && cs_min <= cs_max);
  Sweep sweep;
  sweep.x_label = "C_s";

  // Reference algorithms do not depend on C_s; evaluate them once and repeat
  // their aggregates across the x-axis, exactly like the flat lines in the
  // paper's figures 5-6.
  std::map<std::string, Aggregate> references;
  for (const std::string& algorithm : reference_algorithms) {
    RunSpec spec;
    spec.workload = base;
    spec.algorithm = algorithm;
    spec.options.lookahead = lookahead;
    references[algorithm] = run_replicated(spec, replications);
  }

  for (int cs = cs_min; cs <= cs_max; ++cs) {
    SweepPoint point;
    point.x = cs;
    RunSpec spec;
    spec.workload = base;
    spec.algorithm = "Delayed-LOS";
    spec.options.max_skip_count = cs;
    spec.options.lookahead = lookahead;
    point.by_algorithm["Delayed-LOS"] = run_replicated(spec, replications);
    for (const auto& [name, aggregate] : references)
      point.by_algorithm[name] = aggregate;
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

Improvement max_improvement(const Sweep& sweep, const std::string& candidate,
                            const std::string& baseline) {
  Improvement improvement;
  bool any = false;
  for (const SweepPoint& point : sweep.points) {
    const auto candidate_it = point.by_algorithm.find(candidate);
    const auto baseline_it = point.by_algorithm.find(baseline);
    ES_EXPECTS(candidate_it != point.by_algorithm.end());
    ES_EXPECTS(baseline_it != point.by_algorithm.end());
    const Aggregate& c = candidate_it->second;
    const Aggregate& b = baseline_it->second;
    improvement.utilization =
        std::max(improvement.utilization,
                 util::improvement_higher_better(b.utilization, c.utilization));
    improvement.wait = std::max(
        improvement.wait, util::improvement_lower_better(b.mean_wait, c.mean_wait));
    improvement.slowdown =
        std::max(improvement.slowdown,
                 util::improvement_lower_better(b.slowdown, c.slowdown));
    any = true;
  }
  ES_EXPECTS(any);
  return improvement;
}

}  // namespace es::exp
