#include "exp/contiguity.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/utilization.hpp"
#include "sim/simulation.hpp"
#include "util/check.hpp"

namespace es::exp {
namespace {

struct Task {
  workload::Job spec;
  int units = 0;
  sim::Time start = -1;
  sim::Time end = -1;
  bool running = false;
  bool done = false;
};

/// The study simulator.  One instance per run.
class Study {
 public:
  Study(const workload::Workload& workload, const ContiguityPolicy& policy)
      : policy_(policy),
        grain_(std::max(1, workload.granularity)),
        machine_(std::max(1, workload.machine_procs / std::max(1, workload.granularity)),
                 policy.placement),
        utilization_(machine_.total_units()) {
    tasks_.reserve(workload.jobs.size());
    for (const workload::Job& job : workload.jobs) {
      ES_EXPECTS(!job.dedicated());  // batch-only study
      auto task = std::make_unique<Task>();
      task->spec = job;
      task->units = (job.num + grain_ - 1) / grain_;
      ES_EXPECTS(task->units <= machine_.total_units());
      tasks_.push_back(std::move(task));
    }
  }

  ContiguityResult run() {
    for (const auto& task : tasks_) {
      sim_.at(task->spec.arr, sim::EventClass::kJobArrival,
              [this, t = task.get()](sim::Time) {
                queue_.push_back(t);
                cycle();
              });
    }
    if (!tasks_.empty()) {
      first_arrival_ = tasks_.front()->spec.arr;
      utilization_.record(first_arrival_, 0);
      frag_last_time_ = first_arrival_;
    }
    sim_.run();
    ES_ENSURES(queue_.empty());

    ContiguityResult result;
    result.migrations = migrations_;
    result.jobs_moved = jobs_moved_;
    double wait_sum = 0;
    for (const auto& task : tasks_) {
      ES_ASSERT(task->done);
      wait_sum += task->start - task->spec.arr;
      ++result.completed;
    }
    if (!tasks_.empty()) {
      result.mean_wait = wait_sum / static_cast<double>(tasks_.size());
      result.utilization =
          utilization_.mean_utilization(first_arrival_, last_end_);
      result.mean_fragmentation =
          last_end_ > first_arrival_
              ? frag_integral_ / (last_end_ - first_arrival_)
              : 0.0;
    }
    return result;
  }

 private:
  bool fits(int units) const {
    return policy_.contiguous ? machine_.fits(units)
                              : units <= machine_.free_units();
  }

  void integrate_fragmentation() {
    const sim::Time now = sim_.now();
    frag_integral_ += machine_.fragmentation() * (now - frag_last_time_);
    frag_last_time_ = now;
  }

  void start(Task* task) {
    const auto it = std::find(queue_.begin(), queue_.end(), task);
    ES_ASSERT(it != queue_.end());
    queue_.erase(it);
    // Scalar mode ignores placement: compact silently (free migration) so
    // the underlying allocator always has a hole for anything that fits by
    // total capacity.  This is the idealized reference bound.
    if (!policy_.contiguous && !machine_.fits(task->units))
      machine_.compact();
    machine_.allocate(task->spec.id, task->units);
    task->running = true;
    task->start = sim_.now();
    running_.push_back(task);
    utilization_.record(
        sim_.now(), machine_.total_units() - machine_.free_units());
    sim_.at(sim_.now() + task->spec.actual_runtime(),
            sim::EventClass::kJobFinish, [this, task](sim::Time) {
              machine_.release(task->spec.id);
              task->running = false;
              task->done = true;
              task->end = sim_.now();
              last_end_ = std::max(last_end_, task->end);
              const auto rit =
                  std::find(running_.begin(), running_.end(), task);
              ES_ASSERT(rit != running_.end());
              running_.erase(rit);
              utilization_.record(sim_.now(), machine_.total_units() -
                                                  machine_.free_units());
              cycle();
            });
  }

  /// Earliest time the head's unit count frees up, ignoring contiguity —
  /// the conservative shadow bound used to gate backfilling.
  sim::Time head_shadow(const Task& head) const {
    std::vector<std::pair<sim::Time, int>> ends;
    ends.reserve(running_.size());
    for (const Task* task : running_)
      ends.emplace_back(task->start + task->spec.actual_runtime(),
                        task->units);
    std::sort(ends.begin(), ends.end());
    int available = machine_.free_units();
    for (const auto& [end, units] : ends) {
      available += units;
      if (available >= head.units) return end;
    }
    return sim_.now();  // already enough in total
  }

  void cycle() {
    integrate_fragmentation();
    bool progress = true;
    while (progress) {
      progress = false;
      // Head rule (FCFS order).
      while (!queue_.empty()) {
        Task* head = queue_.front();
        if (fits(head->units)) {
          start(head);
          progress = true;
          continue;
        }
        // Blocked.  Fragmentation-only blockage can be migrated away.
        if (policy_.contiguous && policy_.migrate &&
            head->units <= machine_.free_units()) {
          const auto moved = machine_.compact();
          ++migrations_;
          jobs_moved_ += moved.size();
          ES_ASSERT(machine_.fits(head->units));
          continue;  // head now fits
        }
        break;
      }
      if (queue_.empty() || !policy_.backfill) return;

      // EASY-style backfill behind the blocked head: a candidate may start
      // if it fits and finishes before the head's shadow bound.
      Task* head = queue_.front();
      const sim::Time shadow = head_shadow(*head);
      std::vector<Task*> candidates(queue_.begin() + 1, queue_.end());
      for (Task* task : candidates) {
        if (!fits(task->units)) continue;
        if (sim_.now() + task->spec.actual_runtime() > shadow) continue;
        start(task);
        progress = true;
      }
    }
  }

  ContiguityPolicy policy_;
  int grain_;
  cluster::ContiguousMachine machine_;
  cluster::UtilizationTracker utilization_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::deque<Task*> queue_;
  std::vector<Task*> running_;
  std::uint64_t migrations_ = 0;
  std::uint64_t jobs_moved_ = 0;
  sim::Time first_arrival_ = 0;
  sim::Time last_end_ = 0;
  double frag_integral_ = 0;
  sim::Time frag_last_time_ = 0;
};

}  // namespace

ContiguityResult run_contiguity_study(const workload::Workload& workload,
                                      const ContiguityPolicy& policy) {
  Study study(workload, policy);
  return study.run();
}

}  // namespace es::exp
