// Rendering of sweep results: the aligned terminal tables every bench prints
// (one per metric, mirroring the paper's figure panels) and CSV series for
// external plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "exp/sweep.hpp"

namespace es::exp {

/// Prints one table per metric (utilization %, mean wait s, slowdown) with a
/// column per algorithm, plus the achieved offered load.
void print_sweep(std::ostream& out, const std::string& title,
                 const Sweep& sweep,
                 const std::vector<std::string>& algorithms);

/// Prints a paper-style improvement table ("Maximum % improvement of
/// <candidate> over <baselines...>").
void print_improvements(std::ostream& out, const std::string& title,
                        const Sweep& sweep, const std::string& candidate,
                        const std::vector<std::string>& baselines);

/// Writes the sweep as tidy CSV: x, algorithm, utilization, wait, slowdown,
/// offered_load, replications, ci95 columns.  Returns false on I/O failure.
bool write_sweep_csv(const std::string& path, const Sweep& sweep);

/// Writes a self-contained gnuplot script plotting the sweep's utilization
/// and mean-wait panels from the CSV at `csv_filename` (a path relative to
/// where gnuplot runs, typically the same directory).  Renders to
/// <name>.svg when executed:  gnuplot results/fig07.gp
bool write_sweep_gnuplot(const std::string& path,
                         const std::string& csv_filename,
                         const std::string& title, const Sweep& sweep,
                         const std::vector<std::string>& algorithms);

}  // namespace es::exp
