// Contiguity/migration study (paper section II: Krevat et al., BlueGene/L).
//
// A focused simulator over cluster::ContiguousMachine measuring what the
// contiguous-partition constraint costs and what migration-based
// de-fragmentation buys back.  Kept separate from the main engine because
// contiguity changes fit semantics (free capacity is no longer a scalar),
// which none of the paper's schedulers model.
#pragma once

#include <cstdint>

#include "cluster/contiguous.hpp"
#include "workload/job.hpp"

namespace es::exp {

struct ContiguityPolicy {
  /// Require contiguous placements.  false = scalar capacity (the main
  /// engine's semantics) for an apples-to-apples reference.
  bool contiguous = true;
  /// EASY-style backfilling (with a conservative shadow approximation);
  /// false = plain FCFS.
  bool backfill = true;
  /// Compact running jobs when the queue head is blocked only by
  /// fragmentation (total free suffices, no hole does).
  bool migrate = false;
  cluster::ContiguousMachine::Placement placement =
      cluster::ContiguousMachine::Placement::kFirstFit;
};

struct ContiguityResult {
  double utilization = 0;       ///< busy units over [first arrival, last end]
  double mean_wait = 0;
  std::uint64_t migrations = 0;     ///< migration passes performed
  std::uint64_t jobs_moved = 0;     ///< running jobs relocated in total
  double mean_fragmentation = 0;    ///< time-weighted external fragmentation
  std::uint64_t completed = 0;
};

/// Runs `workload` (batch jobs only; ECCs ignored) on a contiguous machine
/// of workload.machine_procs processors in units of workload.granularity.
ContiguityResult run_contiguity_study(const workload::Workload& workload,
                                      const ContiguityPolicy& policy);

}  // namespace es::exp
