// Parameter sweeps and improvement summaries — the shapes of the paper's
// figures (metric vs load, metric vs C_s) and tables (max % improvement).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace es::exp {

/// One x-position of a sweep with every x-dependent algorithm's aggregate.
struct SweepPoint {
  double x = 0;  ///< load, C_s, P_S, ... depending on the sweep
  std::map<std::string, Aggregate> by_algorithm;
};

struct Sweep {
  std::string x_label;
  std::vector<SweepPoint> points;
  /// Aggregates of x-independent reference algorithms (the flat lines of
  /// figures 5-6), shared by every point instead of copied into each one.
  std::map<std::string, Aggregate> references;

  /// Looks up `algorithm` at `point`: the point's own series first, then
  /// the shared references.  Returns nullptr when the sweep never ran it.
  const Aggregate* find(const SweepPoint& point,
                        const std::string& algorithm) const;

  /// The point's series merged with the shared references, in map (name)
  /// order — what consumers iterate to see every series at this x.
  std::map<std::string, const Aggregate*> merged(const SweepPoint& point) const;
};

/// Runs `algorithms` over the target loads (paper figures 7-11: x = offered
/// load, each point an independent N_J-job workload).  `base` supplies every
/// other knob; per-algorithm options come from `options`.
Sweep load_sweep(const workload::GeneratorConfig& base,
                 const std::vector<double>& loads,
                 const std::vector<std::string>& algorithms,
                 const core::AlgorithmOptions& options, int replications);

/// Runs Delayed-LOS across C_s values plus C_s-independent reference
/// algorithms (paper figures 5-6: x = C_s).
Sweep skip_count_sweep(const workload::GeneratorConfig& base, int cs_min,
                       int cs_max,
                       const std::vector<std::string>& reference_algorithms,
                       int lookahead, int replications);

/// Maximum percentage improvement of `candidate` over `baseline` across the
/// sweep (utilization: higher is better; wait/slowdown: lower is better) —
/// the quantity reported by the paper's Tables IV-VII.
struct Improvement {
  double utilization = 0;
  double wait = 0;
  double slowdown = 0;
};
Improvement max_improvement(const Sweep& sweep, const std::string& candidate,
                            const std::string& baseline);

}  // namespace es::exp
