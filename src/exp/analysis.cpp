#include "exp/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "sched/trace.hpp"

namespace es::exp {
namespace {

WaitSummary summarize(util::Samples& samples) {
  WaitSummary summary;
  summary.count = samples.count();
  if (summary.count == 0) return summary;
  summary.mean = samples.mean();
  summary.median = samples.quantile(0.5);
  summary.p95 = samples.quantile(0.95);
  summary.p99 = samples.quantile(0.99);
  summary.max = samples.quantile(1.0);
  return summary;
}

}  // namespace

WaitSummary wait_distribution(const sched::SimulationResult& result) {
  util::Samples samples;
  for (const sched::JobOutcome& job : result.jobs) samples.add(job.wait);
  return summarize(samples);
}

FairnessBreakdown fairness_by_size(const sched::SimulationResult& result,
                                   int small_threshold) {
  util::Samples small_waits, large_waits;
  for (const sched::JobOutcome& job : result.jobs) {
    (job.procs <= small_threshold ? small_waits : large_waits).add(job.wait);
  }
  FairnessBreakdown breakdown;
  breakdown.small = summarize(small_waits);
  breakdown.large = summarize(large_waits);
  if (breakdown.small.count > 0 && breakdown.large.count > 0 &&
      breakdown.small.mean > 0) {
    breakdown.large_to_small_wait_ratio =
        breakdown.large.mean / breakdown.small.mean;
  }
  return breakdown;
}

std::vector<double> utilization_timeline(
    const sched::SimulationResult& result, int machine_procs, int buckets) {
  if (result.jobs.empty() || buckets <= 0 || machine_procs <= 0) return {};
  const double begin = result.first_arrival;
  const double end = result.last_finish;
  if (end <= begin) return std::vector<double>(static_cast<std::size_t>(buckets), 0.0);
  const double width = (end - begin) / buckets;
  std::vector<double> busy_seconds(static_cast<std::size_t>(buckets), 0.0);
  for (const sched::JobOutcome& job : result.jobs) {
    for (int b = 0; b < buckets; ++b) {
      const double lo = std::max(begin + b * width, job.started);
      const double hi = std::min(begin + (b + 1) * width, job.finished);
      if (hi > lo)
        busy_seconds[static_cast<std::size_t>(b)] += job.procs * (hi - lo);
    }
  }
  std::vector<double> timeline(static_cast<std::size_t>(buckets), 0.0);
  for (int b = 0; b < buckets; ++b)
    timeline[static_cast<std::size_t>(b)] =
        busy_seconds[static_cast<std::size_t>(b)] / (machine_procs * width);
  return timeline;
}

std::string render_profile(const std::vector<double>& timeline) {
  // Eighth-block bars, matching sparkline conventions.
  static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                  "▄", "▅", "▆", "▇",
                                  "█"};
  std::string out;
  for (double level : timeline) {
    const double clamped = level < 0 ? 0 : (level > 1 ? 1 : level);
    out += kBlocks[static_cast<int>(std::lround(clamped * 8))];
  }
  return out;
}

namespace {

/// Queue-length step function from a trace: +1 on arrival, -1 on start.
std::vector<std::pair<double, int>> queue_steps(
    const sched::ScheduleTrace& trace) {
  std::vector<std::pair<double, int>> steps;
  int level = 0;
  for (const sched::TraceEvent& event : trace.events()) {
    if (event.kind == sched::TraceEventKind::kArrival) {
      ++level;
    } else if (event.kind == sched::TraceEventKind::kStart) {
      --level;
    } else {
      continue;
    }
    steps.emplace_back(event.time, level);
  }
  return steps;
}

}  // namespace

std::vector<double> queue_length_timeline(const sched::ScheduleTrace& trace,
                                          int buckets) {
  const auto steps = queue_steps(trace);
  if (steps.empty() || buckets <= 0) return {};
  const double begin = steps.front().first;
  const double end = steps.back().first;
  std::vector<double> timeline(static_cast<std::size_t>(buckets), 0.0);
  if (end <= begin) return timeline;
  const double width = (end - begin) / buckets;
  // Sample the level at each bucket's midpoint.
  std::size_t cursor = 0;
  int level = 0;
  for (int b = 0; b < buckets; ++b) {
    const double at = begin + (b + 0.5) * width;
    while (cursor < steps.size() && steps[cursor].first <= at)
      level = steps[cursor++].second;
    timeline[static_cast<std::size_t>(b)] = level;
  }
  return timeline;
}

QueueStats queue_stats(const sched::ScheduleTrace& trace) {
  QueueStats stats;
  const auto steps = queue_steps(trace);
  if (steps.empty()) return stats;
  double integral = 0;
  double last_time = steps.front().first;
  int level = 0;
  for (const auto& [time, new_level] : steps) {
    integral += static_cast<double>(level) * (time - last_time);
    last_time = time;
    level = new_level;
    stats.peak = std::max(stats.peak, static_cast<std::size_t>(
                                          std::max(level, 0)));
  }
  const double span = steps.back().first - steps.front().first;
  stats.mean = span > 0 ? integral / span : 0.0;
  return stats;
}

double confidence_half_width_95(const util::RunningStats& stats) {
  const std::size_t n = stats.count();
  if (n < 2) return 0.0;
  // Two-sided 97.5% Student-t quantiles for small df, then normal.
  static constexpr double kT[] = {0,     12.706, 4.303, 3.182, 2.776, 2.571,
                                  2.447, 2.365,  2.306, 2.262, 2.228, 2.201,
                                  2.179, 2.160,  2.145, 2.131, 2.120, 2.110,
                                  2.101, 2.093,  2.086, 2.080, 2.074, 2.069,
                                  2.064, 2.060,  2.056, 2.052, 2.048, 2.045};
  const std::size_t df = n - 1;
  const double t = df < std::size(kT) ? kT[df] : 1.96;
  return t * stats.stddev() / std::sqrt(static_cast<double>(n));
}

}  // namespace es::exp
