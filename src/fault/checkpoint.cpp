#include "fault/checkpoint.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace es::fault {

CheckpointModel::CheckpointModel(const CheckpointConfig& config)
    : config_(config) {
  ES_EXPECTS(config.interval >= 0);
  ES_EXPECTS(config.overhead >= 0);
  // An enabled model must actually checkpoint somewhere.
  if (config.enabled) ES_EXPECTS(config.interval > 0 || config.on_preempt);
}

int CheckpointModel::periodic_count(double work) const {
  if (!config_.enabled || config_.interval <= 0 ||
      work <= config_.interval)
    return 0;
  // One checkpoint after every full interval; the one coinciding with the
  // end of the attempt is skipped.
  return static_cast<int>(std::ceil(work / config_.interval)) - 1;
}

double CheckpointModel::planned_overhead(double work) const {
  return periodic_count(work) * config_.overhead;
}

double CheckpointModel::work_executed(double elapsed) const {
  if (!config_.enabled || config_.interval <= 0 || config_.overhead <= 0)
    return elapsed;  // no checkpoint overhead: wall time is work time
  const double cycle = config_.interval + config_.overhead;
  const double cycles = std::floor(elapsed / cycle);
  const double rem = elapsed - cycles * cycle;
  return cycles * config_.interval + std::min(rem, config_.interval);
}

int CheckpointModel::completed_count(double elapsed) const {
  if (!config_.enabled || config_.interval <= 0) return 0;
  // Checkpoint i completes at wall time i * (interval + overhead).
  const double cycle = config_.interval + config_.overhead;
  return static_cast<int>(std::floor(elapsed / cycle));
}

double CheckpointModel::banked_work(double elapsed) const {
  if (!config_.enabled) return 0;
  if (config_.on_preempt) return work_executed(elapsed);
  return completed_count(elapsed) * config_.interval;
}

double CheckpointModel::overhead_spent(double elapsed) const {
  if (!config_.enabled || config_.interval <= 0 || config_.overhead <= 0)
    return 0;
  const double cycle = config_.interval + config_.overhead;
  const double cycles = std::floor(elapsed / cycle);
  const double rem = elapsed - cycles * cycle;
  return cycles * config_.overhead + std::max(0.0, rem - config_.interval);
}

}  // namespace es::fault
