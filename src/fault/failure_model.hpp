// Fault injection: a deterministic source of node-outage events.
//
// The paper's evaluation assumes a perfectly reliable BlueGene/P; on real
// machines node failures are the dominant disturbance a scheduling policy
// must survive.  A FailureModel turns a (seed, MTBF, MTTR) triple — or an
// explicit scripted outage list — into a sequence of `Outage` records the
// engine replays as NodeDown/NodeUp events.  Everything is drawn from an
// explicitly seeded es::util::Rng, so the same seed and configuration
// produce a bit-identical simulation, matching the repo's determinism
// convention.
//
// Outage sizes are aligned to the machine's allocation granularity (whole
// node cards fail, as on BG/P-class hardware where the node card is the
// service unit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace es::fault {

/// What the engine does with running jobs preempted by a node failure.
enum class RequeuePolicy {
  kRequeueHead,  ///< back to the batch-queue head (restart as soon as it fits)
  kRequeueTail,  ///< back to the batch-queue tail (re-earns its turn)
  kAbandon,      ///< drop the job; its work so far is lost and counted
};

const char* to_string(RequeuePolicy policy);

/// Parses "head" / "tail" / "abandon" (case-insensitive).
bool parse_requeue_policy(const std::string& text, RequeuePolicy& out);

/// One capacity outage: `procs` processors leave service at `down` and
/// return at `up`.
struct Outage {
  sim::Time down = 0;
  sim::Time up = 0;
  int procs = 0;
};

/// Configuration of the failure process.
struct FailureModelConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  /// Mean gap between consecutive outage onsets (exponential), seconds.
  double mtbf = 4 * 3600.0;
  /// Mean outage duration (exponential), seconds.
  double mttr = 30 * 60.0;
  /// Outage size range in granularity units (node cards), inclusive.  Drawn
  /// uniformly; clamped to the machine size.
  int min_nodes = 1;
  int max_nodes = 1;
  /// Retry budget under the requeue policies: a job preempted this many
  /// times is abandoned instead of requeued again.  0 = retry forever.
  /// Restart-from-scratch needs ~e^(runtime/MTBF) attempts once the MTBF
  /// drops below the job length, so an unbounded retry loop can make a
  /// harsh-MTBF simulation effectively non-terminating.
  int max_interruptions = 0;
  /// Scripted mode: when non-empty these outages are replayed in order and
  /// the stochastic parameters above are ignored.
  std::vector<Outage> script;
};

/// Deterministic outage sequence generator.  The N-th outage drawn depends
/// only on (config, machine shape) — never on wall clock or call timing.
class FailureModel {
 public:
  FailureModel(const FailureModelConfig& config, int machine_procs,
               int granularity);

  bool enabled() const { return config_.enabled; }

  /// Produces the next outage, shifted to begin no earlier than `from`
  /// (down/up are clamped so down >= from and up > down).  Returns false
  /// when the script is exhausted (scripted mode only; the stochastic
  /// process is unbounded).
  bool next(sim::Time from, Outage& out);

  /// Serializable draw-position state: the RNG stream (stochastic mode),
  /// the script cursor (scripted mode), and the previous outage's end.  A
  /// model restored with this state produces the exact outage sequence the
  /// saved one would have.
  struct State {
    util::RngState rng;
    std::uint64_t script_index = 0;
    sim::Time cursor = 0;
  };

  State save_state() const {
    return State{rng_.save(), script_index_, cursor_};
  }

  void restore_state(const State& state) {
    rng_.load(state.rng);
    script_index_ = static_cast<std::size_t>(state.script_index);
    cursor_ = state.cursor;
  }

 private:
  FailureModelConfig config_;
  int machine_procs_;
  int granularity_;
  util::Rng rng_;
  std::size_t script_index_ = 0;
  sim::Time cursor_ = 0;  ///< end of the previous outage (stochastic mode)
};

}  // namespace es::fault
