// Checkpoint/restart recovery model (Young/Daly style).
//
// The requeue policies restart a preempted job from scratch, which makes
// expected completion grow like e^(runtime/MTBF) — effectively
// non-terminating once the MTBF drops below the job runtime.  HPC practice
// bounds that loss with checkpointing: a job periodically pays `overhead`
// wall seconds to durably save its progress, and after a failure resumes
// from the last checkpoint (remaining = runtime - banked) instead of zero.
//
// The model is analytic: no checkpoint events enter the simulation.  An
// attempt of W useful seconds alternates `interval` seconds of work with
// `overhead` seconds of checkpointing, so its wall duration is
// W + (ceil(W/interval) - 1) * overhead (a checkpoint coinciding with the
// end of the attempt is skipped — there is nothing left to protect).  At a
// preemption after `elapsed` wall seconds, the banked work is the last
// completed checkpoint, interval * floor(elapsed / (interval + overhead)).
// The classic trade-off applies: the Young first-order optimum is
// interval ~= sqrt(2 * overhead * MTBF).
//
// `on_preempt` additionally banks *all* executed work at preemption time,
// modelling checkpoint-on-signal / graceful preemption with advance
// warning (the malleable-scheduling assumption).
#pragma once

namespace es::fault {

/// Configuration of the checkpoint/restart model.  Disabled by default;
/// when disabled no engine path changes and results stay byte-identical to
/// the checkpoint-free engine.
struct CheckpointConfig {
  bool enabled = false;
  /// Useful-work seconds between periodic checkpoints (0 = no periodic
  /// checkpoints; only meaningful together with on_preempt).
  double interval = 0;
  /// Wall seconds each periodic checkpoint adds to the attempt.
  double overhead = 0;
  /// Bank all executed work at preemption time (checkpoint-on-signal).
  bool on_preempt = false;
};

/// Pure checkpoint arithmetic over one execution attempt.
class CheckpointModel {
 public:
  CheckpointModel() = default;
  explicit CheckpointModel(const CheckpointConfig& config);

  bool enabled() const { return config_.enabled; }
  const CheckpointConfig& config() const { return config_; }

  /// Periodic checkpoints taken during an attempt of `work` useful seconds.
  int periodic_count(double work) const;

  /// Wall overhead folded into an attempt of `work` useful seconds.
  double planned_overhead(double work) const;

  /// Useful work executed after `elapsed` wall seconds of an attempt.
  double work_executed(double elapsed) const;

  /// Periodic checkpoints completed within `elapsed` wall seconds.
  int completed_count(double elapsed) const;

  /// Work durably banked after `elapsed` wall seconds: the last completed
  /// periodic checkpoint, or everything executed when on_preempt is set.
  double banked_work(double elapsed) const;

  /// Wall seconds spent checkpointing within `elapsed`.
  double overhead_spent(double elapsed) const;

 private:
  CheckpointConfig config_;
};

}  // namespace es::fault
