#include "fault/failure_model.hpp"

#include <algorithm>
#include <cctype>

#include "util/check.hpp"

namespace es::fault {

const char* to_string(RequeuePolicy policy) {
  switch (policy) {
    case RequeuePolicy::kRequeueHead: return "head";
    case RequeuePolicy::kRequeueTail: return "tail";
    case RequeuePolicy::kAbandon: return "abandon";
  }
  return "?";
}

bool parse_requeue_policy(const std::string& text, RequeuePolicy& out) {
  std::string key = text;
  std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (key == "head") {
    out = RequeuePolicy::kRequeueHead;
  } else if (key == "tail") {
    out = RequeuePolicy::kRequeueTail;
  } else if (key == "abandon") {
    out = RequeuePolicy::kAbandon;
  } else {
    return false;
  }
  return true;
}

FailureModel::FailureModel(const FailureModelConfig& config, int machine_procs,
                           int granularity)
    : config_(config),
      machine_procs_(machine_procs),
      granularity_(granularity),
      rng_(config.seed) {
  ES_EXPECTS(machine_procs > 0);
  ES_EXPECTS(granularity > 0);
  if (config_.enabled && config_.script.empty()) {
    ES_EXPECTS(config_.mtbf > 0);
    ES_EXPECTS(config_.mttr > 0);
    ES_EXPECTS(config_.min_nodes >= 1);
    ES_EXPECTS(config_.max_nodes >= config_.min_nodes);
  }
}

bool FailureModel::next(sim::Time from, Outage& out) {
  ES_EXPECTS(config_.enabled);
  Outage outage;
  if (!config_.script.empty()) {
    if (script_index_ >= config_.script.size()) return false;
    outage = config_.script[script_index_++];
    ES_EXPECTS(outage.up > outage.down);
    ES_EXPECTS(outage.procs > 0);
  } else {
    // Exponential gap from the end of the previous outage, exponential
    // repair time, uniform whole-node-card size.
    const double gap = rng_.exponential(config_.mtbf);
    const double repair = rng_.exponential(config_.mttr);
    const int max_cards = std::max(1, machine_procs_ / granularity_);
    const int lo = std::min(config_.min_nodes, max_cards);
    const int hi = std::min(config_.max_nodes, max_cards);
    const int cards = static_cast<int>(rng_.uniform_int(lo, hi));
    outage.down = std::max(cursor_, from) + gap;
    outage.up = outage.down + std::max(repair, 1e-6);
    outage.procs = cards * granularity_;
    cursor_ = outage.up;
  }
  // Clamp into the caller's window: outages are replayed sequentially, so a
  // scripted entry overlapping the previous one degrades to a contiguous
  // follow-on outage rather than a concurrent one.
  if (outage.down < from) outage.down = from;
  if (outage.up <= outage.down) outage.up = outage.down + 1e-6;
  outage.procs = std::min(outage.procs, machine_procs_);
  ES_ENSURES(outage.procs > 0 && outage.procs <= machine_procs_);
  out = outage;
  return true;
}

}  // namespace es::fault
