#include "core/factory.hpp"

#include <algorithm>
#include <cctype>

#include "core/delayed_los.hpp"
#include "core/hybrid_los.hpp"
#include "core/los.hpp"
#include "core/selector.hpp"
#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fairshare.hpp"
#include "sched/fcfs.hpp"
#include "sched/sorted_queue.hpp"

namespace es::core {
namespace {

std::string lower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// Splits a lowercased name into its base policy and the ECC-suffix flag:
/// "easy-de" -> ("easy-d", true), "delayed-los-e" -> ("delayed-los", true).
std::string strip_ecc_suffix(const std::string& key, bool* process_eccs) {
  std::string base = key;
  if (base.size() > 3 && base.ends_with("-de")) {
    *process_eccs = true;
    base.pop_back();  // drop the 'e', keep the dedicated "-d"
  } else if (base.size() > 2 && base.ends_with("-e")) {
    *process_eccs = true;
    base = base.substr(0, base.size() - 2);
  }
  return base;
}

std::unique_ptr<sched::Scheduler> build_policy(
    const std::string& base, const AlgorithmOptions& options) {
  if (base == "easy") return std::make_unique<sched::Easy>(false);
  if (base == "easy-d") return std::make_unique<sched::Easy>(true);
  if (base == "los") return std::make_unique<Los>(false, options.lookahead);
  if (base == "los-d") return std::make_unique<Los>(true, options.lookahead);
  if (base == "delayed-los")
    return std::make_unique<DelayedLos>(options.max_skip_count,
                                        options.lookahead);
  if (base == "hybrid-los")
    return std::make_unique<HybridLos>(options.max_skip_count,
                                       options.lookahead);
  if (base == "fcfs") return std::make_unique<sched::Fcfs>();
  if (base == "sjf")
    return std::make_unique<sched::SortedQueue>(
        sched::QueueOrder::kShortestFirst);
  if (base == "smallest")
    return std::make_unique<sched::SortedQueue>(
        sched::QueueOrder::kSmallestFirst);
  if (base == "ljf")
    return std::make_unique<sched::SortedQueue>(
        sched::QueueOrder::kLargestFirst);
  if (base == "cons" || base == "conservative")
    return std::make_unique<sched::Conservative>();
  if (base == "fairshare")
    return std::make_unique<sched::FairShare>(options.engine.fairshare);
  if (base == "adaptive") {
    AdaptiveSelector::Options selector_options;
    selector_options.max_skip_count = options.max_skip_count;
    selector_options.lookahead = options.lookahead;
    return std::make_unique<AdaptiveSelector>(selector_options);
  }
  return nullptr;
}

std::string unknown_message(const std::string& name) {
  std::string message = "unknown algorithm '" + name + "'; known names:";
  for (const std::string& known : algorithm_names()) message += " " + known;
  return message;
}

}  // namespace

UnknownAlgorithmError::UnknownAlgorithmError(const std::string& name)
    : std::invalid_argument(unknown_message(name)), name_(name) {}

Algorithm make_algorithm(const std::string& name,
                         const AlgorithmOptions& options) {
  Algorithm algorithm;
  const std::string base =
      strip_ecc_suffix(lower(name), &algorithm.process_eccs);
  algorithm.policy = build_policy(base, options);
  if (algorithm.policy == nullptr) throw UnknownAlgorithmError(name);

  algorithm.policy->set_dp_cache(options.dp_cache);
  if (options.dp_cache_slots !=
      static_cast<int>(DpWorkspace::kDefaultCacheSlots))
    algorithm.policy->set_dp_cache_slots(
        options.dp_cache_slots > 0
            ? static_cast<std::size_t>(options.dp_cache_slots)
            : std::size_t{1});
  algorithm.allow_running_resize =
      algorithm.process_eccs && options.engine.allow_running_resize;
  algorithm.canonical_name = algorithm.policy->name();
  if (algorithm.process_eccs) {
    // Dedicated variants end in "-D" and become "-DE" (EASY-DE, LOS-DE);
    // the rest take a "-E" suffix, matching the paper's Table III.
    algorithm.canonical_name +=
        algorithm.canonical_name.ends_with("-D") ? "E" : "-E";
  }
  return algorithm;
}

bool is_algorithm_name(const std::string& name) {
  bool process_eccs = false;
  // Builds and discards the policy: cheap enough for CLI validation and
  // can't diverge from make_algorithm because both share
  // strip_ecc_suffix + build_policy.
  return build_policy(strip_ecc_suffix(lower(name), &process_eccs), {}) !=
         nullptr;
}

std::vector<std::string> algorithm_names() {
  return {"EASY",        "EASY-D",        "EASY-E",        "EASY-DE",
          "LOS",         "LOS-D",         "LOS-E",         "LOS-DE",
          "Delayed-LOS", "Hybrid-LOS",    "Delayed-LOS-E", "Hybrid-LOS-E",
          "FCFS",        "CONS",          "SJF",           "SMALLEST",
          "LJF",         "Adaptive",      "FairShare",     "FairShare-E"};
}

}  // namespace es::core
