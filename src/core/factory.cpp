#include "core/factory.hpp"

#include <algorithm>
#include <cctype>

#include "core/delayed_los.hpp"
#include "core/hybrid_los.hpp"
#include "core/los.hpp"
#include "core/selector.hpp"
#include "sched/conservative.hpp"
#include "sched/easy.hpp"
#include "sched/fcfs.hpp"
#include "sched/sorted_queue.hpp"

namespace es::core {
namespace {

std::string lower(const std::string& text) {
  std::string out = text;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

}  // namespace

Algorithm make_algorithm(const std::string& name,
                         const AlgorithmOptions& options) {
  const std::string key = lower(name);
  Algorithm algorithm;

  // Strip the ECC suffix so the twelve Table-III names map onto the six
  // policies: "easy-de" -> "easy-d" + eccs, "delayed-los-e" -> "delayed-los"
  // + eccs.
  std::string base = key;
  if (base.size() > 3 && base.ends_with("-de")) {
    algorithm.process_eccs = true;
    base.pop_back();  // drop the 'e', keep the dedicated "-d"
  } else if (base.size() > 2 && base.ends_with("-e")) {
    algorithm.process_eccs = true;
    base = base.substr(0, base.size() - 2);
  }

  if (base == "easy") {
    algorithm.policy = std::make_unique<sched::Easy>(false);
  } else if (base == "easy-d") {
    algorithm.policy = std::make_unique<sched::Easy>(true);
  } else if (base == "los") {
    algorithm.policy = std::make_unique<Los>(false, options.lookahead);
  } else if (base == "los-d") {
    algorithm.policy = std::make_unique<Los>(true, options.lookahead);
  } else if (base == "delayed-los") {
    algorithm.policy = std::make_unique<DelayedLos>(options.max_skip_count,
                                                    options.lookahead);
  } else if (base == "hybrid-los") {
    algorithm.policy = std::make_unique<HybridLos>(options.max_skip_count,
                                                   options.lookahead);
  } else if (base == "fcfs") {
    algorithm.policy = std::make_unique<sched::Fcfs>();
  } else if (base == "sjf") {
    algorithm.policy =
        std::make_unique<sched::SortedQueue>(sched::QueueOrder::kShortestFirst);
  } else if (base == "smallest") {
    algorithm.policy =
        std::make_unique<sched::SortedQueue>(sched::QueueOrder::kSmallestFirst);
  } else if (base == "ljf") {
    algorithm.policy =
        std::make_unique<sched::SortedQueue>(sched::QueueOrder::kLargestFirst);
  } else if (base == "cons" || base == "conservative") {
    algorithm.policy = std::make_unique<sched::Conservative>();
  } else if (base == "adaptive") {
    AdaptiveSelector::Options selector_options;
    selector_options.max_skip_count = options.max_skip_count;
    selector_options.lookahead = options.lookahead;
    algorithm.policy = std::make_unique<AdaptiveSelector>(selector_options);
  }

  if (algorithm.policy != nullptr) {
    algorithm.policy->set_dp_cache(options.dp_cache);
    algorithm.allow_running_resize =
        algorithm.process_eccs && options.allow_running_resize;
    algorithm.canonical_name = algorithm.policy->name();
    if (algorithm.process_eccs) {
      // Dedicated variants end in "-D" and become "-DE" (EASY-DE, LOS-DE);
      // the rest take a "-E" suffix, matching the paper's Table III.
      algorithm.canonical_name +=
          algorithm.canonical_name.ends_with("-D") ? "E" : "-E";
    }
  }
  return algorithm;
}

std::vector<std::string> algorithm_names() {
  return {"EASY",        "EASY-D",        "EASY-E",        "EASY-DE",
          "LOS",         "LOS-D",         "LOS-E",         "LOS-DE",
          "Delayed-LOS", "Hybrid-LOS",    "Delayed-LOS-E", "Hybrid-LOS-E",
          "FCFS",        "CONS",          "SJF",           "SMALLEST",
          "LJF",         "Adaptive"};
}

}  // namespace es::core
