#include "core/dp_speculator.hpp"

#include <thread>
#include <utility>

#include "util/thread_pool.hpp"

namespace es::core {

bool DpSpeculator::launch(const std::vector<int>& weights,
                          int capacity_grains) {
  if (state_.load(std::memory_order_acquire) != kIdle) return false;
  weights_ = weights;
  capacity_ = capacity_grains;
  state_.store(kRunning, std::memory_order_release);
  const bool submitted = util::pool_try_submit([this] {
    selected_ = detail::basic_dp_table(weights_, capacity_, fill_ws_);
    state_.store(kDone, std::memory_order_release);
  });
  if (!submitted) {
    // No pool (or we are a pool worker): nothing was queued, undo.
    state_.store(kIdle, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void DpSpeculator::settle(DpWorkspace& ws) {
  if (state_.load(std::memory_order_acquire) != kDone) return;
  warm_basic_dp_cache(weights_, capacity_, selected_, ws);
  state_.store(kIdle, std::memory_order_relaxed);
}

void DpSpeculator::drain(DpWorkspace& ws) {
  wait();
  if (state_.load(std::memory_order_acquire) == kDone) {
    ++ws.counters.spec_discarded;
    state_.store(kIdle, std::memory_order_relaxed);
  }
}

void DpSpeculator::wait() {
  // Spin-yield: the fill is short (one table) and this runs only at run
  // end or destruction, never in the per-cycle hot path.
  while (state_.load(std::memory_order_acquire) == kRunning)
    std::this_thread::yield();
}

}  // namespace es::core
