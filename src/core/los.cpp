#include "core/los.hpp"

#include <vector>

#include "sched/easy.hpp"  // move_due_dedicated
#include "util/check.hpp"

namespace es::core {

ReservationDpOutcome run_reservation_dp(sched::SchedulerContext& ctx,
                                        const sched::Freeze& freeze,
                                        int lookahead, DpWorkspace& ws) {
  ReservationDpOutcome outcome;
  const int grain = ctx.machine->granularity();
  const int m = ctx.free();
  ES_ASSERT(m % grain == 0);

  // Eligible = first `lookahead` queue jobs that fit the free pool.
  // Workspace scratch: the scan runs every cycle and must not allocate.
  std::vector<sched::JobRun*>& eligible = ws.eligible_scratch;
  std::vector<int>& weights = ws.weights_scratch;
  std::vector<int>& shadow_weights = ws.shadows_scratch;
  eligible.clear();
  weights.clear();
  shadow_weights.clear();
  int scanned = 0;
  for (sched::JobRun* job : *ctx.batch) {
    if (scanned++ >= lookahead) break;
    const int alloc = ctx.alloc_of(*job);
    if (alloc > m) continue;
    // The paper's frenum (Algorithm 1 line 16): a job whose estimate ends
    // strictly before the freeze end time needs no shadow capacity.
    int frenum;
    if (!freeze.active || ctx.now + job->estimated_duration() < freeze.fret) {
      frenum = 0;
    } else {
      frenum = alloc;
    }
    job->frenum = frenum;
    eligible.push_back(job);
    weights.push_back(alloc / grain);
    shadow_weights.push_back(frenum / grain);
  }
  sched::JobRun* head = ctx.batch_head();
  outcome.head_eligible =
      !eligible.empty() && !ctx.batch->empty() && eligible.front() == head;

  const int shadow_cap = freeze.active ? freeze.frec / grain
                                       : ctx.machine->total() / grain;
  const auto selected =
      reservation_dp(weights, shadow_weights, m / grain, shadow_cap, ws);

  for (int index : selected) {
    sched::JobRun* job = eligible[static_cast<std::size_t>(index)];
    if (job == head) outcome.head_selected = true;
    ctx.start(job);
    ++outcome.started;
  }
  return outcome;
}

void Los::cycle(sched::SchedulerContext& ctx) {
  if (dedicated_aware_) sched::move_due_dedicated(ctx);

  for (;;) {
    sched::Freeze ded;
    if (dedicated_aware_ && ctx.dedicated_head()) {
      ES_ASSERT(ctx.dedicated_head()->req_start > ctx.now);
      ded = sched::dedicated_freeze(ctx);
    }

    // LOS's aggressive head rule: start the head right away while it fits
    // (and, in -D mode, does not trample a dedicated reservation — unless it
    // is itself a due dedicated job).
    bool any_started = false;
    while (sched::JobRun* head = ctx.batch_head()) {
      const int alloc = ctx.alloc_of(*head);
      if (alloc > ctx.free()) break;
      if (!head->forced_priority && !respects(ded, ctx.now, *head, alloc))
        break;
      consume(ded, ctx.now, *head, alloc);
      ctx.start(head);
      any_started = true;
    }
    sched::JobRun* head = ctx.batch_head();
    if (head == nullptr) return;

    // Head blocked: reserve for it (or, in -D mode with a pending dedicated
    // group, for that group — Hybrid-LOS structure) and pack around the
    // reservation.  A head larger than the in-service capacity (nodes down)
    // gets no shadow: the DP packs without a reservation until repair.
    sched::Freeze binding = ded;
    if (!binding.active) {
      const int head_alloc = ctx.alloc_of(*head);
      ES_ASSERT(head_alloc > ctx.free());
      if (head_alloc <= ctx.machine->available())
        binding = sched::shadow_for_blocked(ctx, head_alloc);
    }
    const auto outcome = run_reservation_dp(ctx, binding, lookahead_, ws_);
    if (outcome.started == 0 && !any_started) return;
    if (outcome.started == 0) {
      // Heads were started but the DP found nothing further; re-looping
      // cannot make progress because capacity only shrank.
      return;
    }
  }
}

}  // namespace es::core
