// The dynamic programs at the heart of the LOS scheduler family
// (Shmueli & Feitelson 2005; paper section III).
//
// Basic_DP   — pick the subset of waiting jobs that maximizes utilization
//              right now: 0/1 knapsack with weight = value = processors.
// Reservation_DP — same objective under an additional *shadow* constraint:
//              jobs whose estimated completion crosses the freeze end time
//              `fret` must also fit into the shadow capacity `frec`
//              (a 2-dimensional knapsack).
//
// Ties in achievable utilization are broken toward sets containing
// earlier-queued jobs (and more of them), which keeps head jobs from being
// skipped gratuitously and makes results deterministic.
//
// Capacities and weights are in *allocation grains* (processors divided by
// the machine granularity — 32 on BlueGene/P), which keeps the DP tables
// tiny; callers convert.  A reusable workspace avoids per-cycle allocation.
//
// Hot-path structure (PR 3, widened PR 8): every call resolves through,
// in order,
//  1. the *fast path* — when the total eligible demand fits the capacity
//     (and, for Reservation_DP, the total shadow demand fits the shadow
//     capacity), the optimum is "take everything", no table needed;
//  2. the *result cache* — a memo of recent (weights, shadows,
//     capacities) -> selection pairs, keyed on the *normalized* instance:
//     items the fill can never select (weight 0, weight over capacity,
//     shadow weight over shadow capacity) are zeroed in the key, so
//     scheduling events that only perturb ineligible jobs — an arrival too
//     large for the free grains, an ECC resize of an already-too-big
//     queued job — re-pose the same key and the cache answers in O(n)
//     instead of O(n * capacity^2).  The compare on normalized weights is
//     still exact (a hit is always sound); entries carry a FNV-1a
//     fingerprint of the key, so a probe is one hash compare per slot and
//     the element-wise compare runs only on fingerprint agreement — which
//     let the cache grow from 8 to 256 slots (the 8-slot round-robin
//     evicted instances long before the schedule re-posed them: ~1.7% hit
//     rate on the PR 5 baseline);
//  3. the full table fill, with the keep table bitpacked (1 bit per cell,
//     8x smaller than the byte table it replaces) for cache residency.
//     Basic_DP tables wider than a threshold run *blocked*: the column
//     range is tiled into 64-aligned blocks filled double-buffered, and
//     the blocks fan out across util::ThreadPool when the global
//     parallelism is > 1 — each block writes disjoint value cells and
//     disjoint keep words, so the fill is race-free and the backtrack
//     reads the same table the serial fill would have produced.
// All paths return bit-identical selections; the kernels stay pure
// functions of their arguments.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sched/perf.hpp"

namespace es::sched {
struct JobRun;
}

namespace es::core {

/// Reusable DP buffers, result cache and counters; one per policy instance.
struct DpWorkspace {
  std::vector<std::int64_t> value;   ///< dp table, flattened
  std::vector<std::int64_t> value2;  ///< previous row, blocked fills only
  std::vector<std::uint64_t> keep;   ///< per-item take decisions, bitpacked
  std::vector<int> key_weights;      ///< normalized-cache-key scratch
  std::vector<int> key_shadows;      ///< (ineligible items zeroed out)

  /// Per-cycle eligibility-scan scratch, reused by the LOS-family policies
  /// so the hot scheduling cycle performs no heap allocation.  The scans
  /// never nest (a step runs exactly one DP), so one set per workspace
  /// suffices.
  std::vector<sched::JobRun*> eligible_scratch;
  std::vector<int> weights_scratch;
  std::vector<int> shadows_scratch;

  /// Memo of recent instances, keyed on the normalized weights (ineligible
  /// items zeroed — see normalize_key in dp.cpp).  Entries store full
  /// copies of the key and are compared element-wise on fingerprint
  /// agreement, so a hit is always sound (no fingerprint collisions); the
  /// slot count bounds both memory and probe cost.
  struct CacheEntry {
    bool used = false;
    bool reservation = false;  ///< reservation_dp (vs basic_dp) instance
    /// Inserted by the speculative pipeline (warm_basic_dp_cache) and not
    /// yet probed.  A hit on such an entry counts in both cache_hits and
    /// spec_hits; eviction while still set counts in spec_discarded.
    bool speculative = false;
    int capacity = 0;
    int shadow_capacity = 0;
    std::uint64_t fingerprint = 0;  ///< FNV-1a over the full instance key
    std::vector<int> weights;
    std::vector<int> shadow_weights;  ///< empty for basic_dp entries
    std::vector<int> selected;
  };
  static constexpr std::size_t kDefaultCacheSlots = 256;
  std::vector<CacheEntry> cache =
      std::vector<CacheEntry>(kDefaultCacheSlots);
  /// Fingerprint of each cache slot, mirrored out of CacheEntry so the
  /// probe scans one dense word array (2 KiB at the default slot count)
  /// instead of striding across the fat entries; a slot's entry is touched
  /// only on fingerprint agreement.  Invariant: cache_fps[i] ==
  /// cache[i].fingerprint whenever cache[i].used.
  std::vector<std::uint64_t> cache_fps =
      std::vector<std::uint64_t>(kDefaultCacheSlots, 0);
  std::size_t cache_clock = 0;  ///< round-robin eviction cursor
  bool cache_enabled = true;    ///< AlgorithmOptions::dp_cache

  /// Resizes (and clears) the result cache.  Slot count is clamped to
  /// >= 1; AlgorithmOptions::dp_cache_slots plumbs through here.
  void set_cache_slots(std::size_t slots) {
    cache.assign(slots > 0 ? slots : 1, CacheEntry{});
    cache_fps.assign(cache.size(), 0);
    cache_clock = 0;
  }

  sched::DpCounters counters;
};

/// Basic_DP.  `weights[i]` is the i-th waiting job's size in grains, in
/// queue order; `capacity` the free grains.  Returns the selected indices,
/// ascending.  Items with weight 0 are never selected (treat as ineligible).
std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws);

/// Reservation_DP.  `weights[i]` as above; `shadow_weights[i]` is the
/// paper's `frenum` in grains: 0 if the job finishes (by estimate) before
/// the freeze end time, else its size.  Selected sets satisfy
///   sum weights <= capacity  AND  sum shadow_weights <= shadow_capacity.
std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws);

/// Instruction-set tier of the Basic_DP row update.  The kernel is compiled
/// with explicit AVX2 / SSE4.2 blocks (per-function target attributes, so
/// the rest of the binary stays baseline-ISA) and picks the widest tier the
/// host supports at runtime.  Every tier computes the identical max/keep
/// recurrence, so selections are bit-identical across tiers — gated by the
/// dp tests, micro_dp, and the perf_baseline equivalence legs.
enum class DpSimdLevel { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// The tier table fills will actually use: the widest supported one, or
/// kScalar when vectorization is disabled (set_dp_simd_enabled(false),
/// building with ES_DP_SIMD off, or a non-x86 host).
DpSimdLevel dp_simd_level();

/// Force-scalar toggle for differential tests and before/after benchmarks
/// (`simrun --no-dp-simd`).  Thread-safe; takes effect on the next fill.
void set_dp_simd_enabled(bool enabled);
bool dp_simd_enabled();

/// Human-readable tier name ("scalar", "sse4.2", "avx2").
const char* dp_simd_level_name(DpSimdLevel level);

/// Inserts a speculatively precomputed Basic_DP result into `ws`'s result
/// cache, keyed exactly as basic_dp() would key the same instance, and
/// marks the entry speculative.  `selected` must be the table-fill
/// selection for (weights, capacity) — the caller computed it off-thread
/// on a scratch workspace.  Call on the owning (main) thread only: the
/// workspace is not thread-safe.  Pure cache warming — a later basic_dp()
/// call either hits the exact-keyed entry (identical selection to the fill
/// it skipped) or ignores it, so scheduling decisions cannot change.
void warm_basic_dp_cache(std::span<const int> weights, int capacity,
                         const std::vector<int>& selected, DpWorkspace& ws);

namespace detail {

/// The unconditional table fills, bypassing the fast path and the cache.
/// Exposed for the equivalence tests and microbenchmarks that prove the
/// fast paths select identically; production code calls the wrappers above.
std::vector<int> basic_dp_table(std::span<const int> weights, int capacity,
                                DpWorkspace& ws);
std::vector<int> reservation_dp_table(std::span<const int> weights,
                                      std::span<const int> shadow_weights,
                                      int capacity, int shadow_capacity,
                                      DpWorkspace& ws);

}  // namespace detail

}  // namespace es::core
