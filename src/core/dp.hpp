// The dynamic programs at the heart of the LOS scheduler family
// (Shmueli & Feitelson 2005; paper section III).
//
// Basic_DP   — pick the subset of waiting jobs that maximizes utilization
//              right now: 0/1 knapsack with weight = value = processors.
// Reservation_DP — same objective under an additional *shadow* constraint:
//              jobs whose estimated completion crosses the freeze end time
//              `fret` must also fit into the shadow capacity `frec`
//              (a 2-dimensional knapsack).
//
// Ties in achievable utilization are broken toward sets containing
// earlier-queued jobs (and more of them), which keeps head jobs from being
// skipped gratuitously and makes results deterministic.
//
// Capacities and weights are in *allocation grains* (processors divided by
// the machine granularity — 32 on BlueGene/P), which keeps the DP tables
// tiny; callers convert.  A reusable workspace avoids per-cycle allocation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace es::core {

/// Reusable DP buffers; one per policy instance.
struct DpWorkspace {
  std::vector<std::int64_t> value;  ///< dp table, flattened
  std::vector<std::uint8_t> keep;   ///< per-item take decisions, flattened
};

/// Basic_DP.  `weights[i]` is the i-th waiting job's size in grains, in
/// queue order; `capacity` the free grains.  Returns the selected indices,
/// ascending.  Items with weight 0 are never selected (treat as ineligible).
std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws);

/// Reservation_DP.  `weights[i]` as above; `shadow_weights[i]` is the
/// paper's `frenum` in grains: 0 if the job finishes (by estimate) before
/// the freeze end time, else its size.  Selected sets satisfy
///   sum weights <= capacity  AND  sum shadow_weights <= shadow_capacity.
std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws);

}  // namespace es::core
