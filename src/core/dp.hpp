// The dynamic programs at the heart of the LOS scheduler family
// (Shmueli & Feitelson 2005; paper section III).
//
// Basic_DP   — pick the subset of waiting jobs that maximizes utilization
//              right now: 0/1 knapsack with weight = value = processors.
// Reservation_DP — same objective under an additional *shadow* constraint:
//              jobs whose estimated completion crosses the freeze end time
//              `fret` must also fit into the shadow capacity `frec`
//              (a 2-dimensional knapsack).
//
// Ties in achievable utilization are broken toward sets containing
// earlier-queued jobs (and more of them), which keeps head jobs from being
// skipped gratuitously and makes results deterministic.
//
// Capacities and weights are in *allocation grains* (processors divided by
// the machine granularity — 32 on BlueGene/P), which keeps the DP tables
// tiny; callers convert.  A reusable workspace avoids per-cycle allocation.
//
// Hot-path structure (PR 3): every call resolves through, in order,
//  1. the *fast path* — when the total eligible demand fits the capacity
//     (and, for Reservation_DP, the total shadow demand fits the shadow
//     capacity), the optimum is "take everything", no table needed;
//  2. the *result cache* — an exact-key memo of recent (weights, shadows,
//     capacities) -> selection pairs.  Scheduling events that do not change
//     the eligible set (an arrival too large to fit, an ECC on a queued
//     job, a dedicated wake-up) re-pose the identical instance, which the
//     cache answers in O(n) instead of O(n * capacity^2);
//  3. the full table fill, with the keep table bitpacked (1 bit per cell,
//     8x smaller than the byte table it replaces) for cache residency.
// All three paths return bit-identical selections; the kernels stay pure
// functions of their arguments.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "sched/perf.hpp"

namespace es::core {

/// Reusable DP buffers, result cache and counters; one per policy instance.
struct DpWorkspace {
  std::vector<std::int64_t> value;  ///< dp table, flattened
  std::vector<std::uint64_t> keep;  ///< per-item take decisions, bitpacked

  /// Exact-key memo of recent instances.  Entries store full copies of the
  /// inputs and are compared element-wise, so a hit is always sound (no
  /// fingerprint collisions); kSlots bounds both memory and probe cost.
  struct CacheEntry {
    bool used = false;
    bool reservation = false;  ///< reservation_dp (vs basic_dp) instance
    int capacity = 0;
    int shadow_capacity = 0;
    std::vector<int> weights;
    std::vector<int> shadow_weights;  ///< empty for basic_dp entries
    std::vector<int> selected;
  };
  static constexpr std::size_t kCacheSlots = 8;
  std::array<CacheEntry, kCacheSlots> cache;
  std::size_t cache_clock = 0;  ///< round-robin eviction cursor
  bool cache_enabled = true;    ///< AlgorithmOptions::dp_cache

  sched::DpCounters counters;
};

/// Basic_DP.  `weights[i]` is the i-th waiting job's size in grains, in
/// queue order; `capacity` the free grains.  Returns the selected indices,
/// ascending.  Items with weight 0 are never selected (treat as ineligible).
std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws);

/// Reservation_DP.  `weights[i]` as above; `shadow_weights[i]` is the
/// paper's `frenum` in grains: 0 if the job finishes (by estimate) before
/// the freeze end time, else its size.  Selected sets satisfy
///   sum weights <= capacity  AND  sum shadow_weights <= shadow_capacity.
std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws);

namespace detail {

/// The unconditional table fills, bypassing the fast path and the cache.
/// Exposed for the equivalence tests and microbenchmarks that prove the
/// fast paths select identically; production code calls the wrappers above.
std::vector<int> basic_dp_table(std::span<const int> weights, int capacity,
                                DpWorkspace& ws);
std::vector<int> reservation_dp_table(std::span<const int> weights,
                                      std::span<const int> shadow_weights,
                                      int capacity, int shadow_capacity,
                                      DpWorkspace& ws);

}  // namespace detail

}  // namespace es::core
