// LOS — the Lookahead Optimizing Scheduler baseline (Shmueli & Feitelson
// 2005) and its dedicated-queue extension LOS-D (paper section V).
//
// LOS starts the queue-head job right away whenever it fits (the aggressive
// head rule Delayed-LOS relaxes).  When the head is blocked it receives an
// implicit reservation (shadow time / shadow capacity) and Reservation_DP
// packs the remaining waiting jobs to maximize utilization without delaying
// the reservation.
//
// LOS-D: due dedicated jobs move to the batch head (Algorithm 3) and the
// first future dedicated group imposes the freeze instead of the batch head,
// mirroring Hybrid-LOS's structure without the skip-count machinery.
#pragma once

#include "core/dp.hpp"
#include "sched/reservation.hpp"
#include "sched/scheduler.hpp"

namespace es::core {

/// Shared across the LOS family: collects the first `lookahead` batch-queue
/// jobs that fit the free pool, computes their frenum against `freeze`, runs
/// Reservation_DP and starts the selected jobs.  Returns the number of jobs
/// started and whether the batch head was among them (for skip counting).
struct ReservationDpOutcome {
  int started = 0;
  bool head_selected = false;
  bool head_eligible = false;
};
ReservationDpOutcome run_reservation_dp(sched::SchedulerContext& ctx,
                                        const sched::Freeze& freeze,
                                        int lookahead, DpWorkspace& ws);

class Los : public sched::Scheduler {
 public:
  explicit Los(bool dedicated_aware = false, int lookahead = 50)
      : dedicated_aware_(dedicated_aware), lookahead_(lookahead) {}

  std::string name() const override {
    return dedicated_aware_ ? "LOS-D" : "LOS";
  }
  bool supports_dedicated() const override { return dedicated_aware_; }
  void cycle(sched::SchedulerContext& ctx) override;

  int lookahead() const { return lookahead_; }

  sched::DpCounters dp_counters() const override { return ws_.counters; }
  void set_dp_cache(bool enabled) override { ws_.cache_enabled = enabled; }
  void set_dp_cache_slots(std::size_t slots) override {
    ws_.set_cache_slots(slots);
  }

 private:
  bool dedicated_aware_;
  int lookahead_;
  DpWorkspace ws_;
};

}  // namespace es::core
