#include "core/hybrid_los.hpp"

#include "core/delayed_los.hpp"
#include "core/los.hpp"
#include "sched/reservation.hpp"
#include "util/check.hpp"

namespace es::core {

bool HybridLos::step(sched::SchedulerContext& ctx,
                     bool allow_skip_increment) {
  const int m = ctx.free();  // line 1
  sched::JobRun* batch_head = ctx.batch_head();
  sched::JobRun* dedicated_head = ctx.dedicated_head();

  if (m > 0 && batch_head != nullptr) {  // line 2
    if (dedicated_head == nullptr) {
      // Line 3-4: pure batch situation — Delayed-LOS.
      return DelayedLos::step(ctx, max_skip_count_, lookahead_, ws_,
                              allow_skip_increment);
    }
    if (batch_head->scount < max_skip_count_) {  // line 5
      if (dedicated_head->req_start <= ctx.now) {
        // Lines 6-7 (Algorithm 3): the dedicated head is due.
        ctx.move_dedicated_head_to_batch_head();
        return true;
      }
      // Lines 8-33: freeze for the future dedicated group, pack batch jobs
      // around it.  dedicated_freeze implements both the on-time (16-22)
      // and the delayed (23-30) branches.
      const sched::Freeze freeze = sched::dedicated_freeze(ctx);
      const auto outcome =
          run_reservation_dp(ctx, freeze, lookahead_, ws_);
      if (!outcome.head_selected && allow_skip_increment)
        ++batch_head->scount;  // lines 22 / 30
      return outcome.started > 0;
    }
    // Lines 35-37: batch head out of patience — start it right away if it
    // fits; otherwise fall back to the Delayed-LOS reservation path so the
    // head gets a shadow reservation instead of idling (the algorithm as
    // published assumes the head fits here).
    if (ctx.alloc_of(*batch_head) <= m) {
      ctx.start(batch_head);
      return true;
    }
    return DelayedLos::step(ctx, max_skip_count_, lookahead_, ws_,
                            allow_skip_increment);
  }

  // Lines 39-42: no startable batch work; still honour a due dedicated job.
  if (dedicated_head != nullptr && dedicated_head->req_start <= ctx.now) {
    ctx.move_dedicated_head_to_batch_head();
    return true;
  }
  return false;
}

void HybridLos::cycle(sched::SchedulerContext& ctx) {
  // Line 44 ("call again at next event"): iterate to a fixpoint within the
  // event so moved dedicated jobs start without waiting for an unrelated
  // future event.  Skip counting stays per-event.
  bool first = true;
  while (step(ctx, first)) {
    first = false;
  }
}

}  // namespace es::core
