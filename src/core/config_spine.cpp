#include "core/config_spine.hpp"

#include "sched/engine_params.hpp"

namespace es::core {

void register_run_params(util::ParamRegistry& registry,
                         AlgorithmOptions& options) {
  registry
      .add_int("algorithm.max_skip_count", &options.max_skip_count,
               "C_s skip budget for Delayed-LOS / Hybrid-LOS")
      .range(0, 1 << 20)
      .alias("algorithm.cs");
  registry
      .add_int("algorithm.lookahead", &options.lookahead,
               "DP lookahead depth (Shmueli's 50-job limit)")
      .range(1, 1 << 20);
  registry
      .add_bool("algorithm.dp_cache", &options.dp_cache,
                "memoize knapsack instances across scheduling events "
                "(bit-identical either way)")
      .no_fingerprint();
  registry
      .add_int("algorithm.dp_cache_slots", &options.dp_cache_slots,
               "DP result-cache slot count")
      .range(1, 1 << 20)
      .no_fingerprint();
  sched::register_engine_params(registry, options.engine);
}

void register_tenancy_params(util::ParamRegistry& registry,
                             workload::GeneratorConfig& config) {
  registry
      .add_int("tenancy.users", &config.num_users,
               "Zipf-distributed submitting users to tag jobs with (0 = "
               "untagged)")
      .range(0, 10'000'000)
      .alias("tenancy.num_users");
  registry
      .add_double("tenancy.zipf_exponent", &config.zipf_exponent,
                  "Zipf exponent of per-user submission rates")
      .range(0.01, 10);
  registry
      .add_int("tenancy.pools", &config.num_pools,
               "fair-share pools jobs are charged to, round-robin over user "
               "rank (0 = all in pool 0)")
      .range(0, 255)
      .alias("tenancy.num_pools");
}

}  // namespace es::core
