#include "core/delayed_los.hpp"

#include <vector>

#include "sched/reservation.hpp"
#include "util/check.hpp"

namespace es::core {

bool DelayedLos::step(sched::SchedulerContext& ctx, int max_skip_count,
                      int lookahead, DpWorkspace& ws,
                      bool allow_skip_increment) {
  const int m = ctx.free();
  sched::JobRun* head = ctx.batch_head();
  if (m <= 0 || head == nullptr) return false;  // Alg. 1 line 2

  const int grain = ctx.machine->granularity();
  const int head_alloc = ctx.alloc_of(*head);

  if (head_alloc <= m && head->scount >= max_skip_count) {
    // Lines 3-5: patience exhausted — start the head right away.
    ctx.start(head);
    return true;
  }

  if (head_alloc <= m) {
    // Lines 6-11: Basic_DP over the first `lookahead` waiting jobs.
    // Workspace scratch: this scan runs every cycle and must not allocate.
    std::vector<sched::JobRun*>& eligible = ws.eligible_scratch;
    std::vector<int>& weights = ws.weights_scratch;
    eligible.clear();
    weights.clear();
    int scanned = 0;
    for (sched::JobRun* job : *ctx.batch) {
      if (scanned++ >= lookahead) break;
      const int alloc = ctx.alloc_of(*job);
      if (alloc > m) continue;
      eligible.push_back(job);
      weights.push_back(alloc / grain);
    }
    const auto selected = basic_dp(weights, m / grain, ws);
    ES_ASSERT(!selected.empty());  // the head alone always fits
    bool head_selected = false;
    int started = 0;
    for (int index : selected) {
      sched::JobRun* job = eligible[static_cast<std::size_t>(index)];
      if (job == head) head_selected = true;
      ctx.start(job);
      ++started;
    }
    if (!head_selected && allow_skip_increment) ++head->scount;  // line 9
    return started > 0;
  }

  // Lines 12-20: the head does not fit — give it the shadow reservation and
  // pack the queue around it with Reservation_DP.  When node failures have
  // pushed the head's need beyond the in-service capacity, no reservation
  // is computable (no completion frees offline processors): pack without
  // one until the machine is repaired.
  sched::Freeze freeze;
  if (head_alloc <= ctx.machine->available())
    freeze = sched::shadow_for_blocked(ctx, head_alloc);
  const auto outcome = run_reservation_dp(ctx, freeze, lookahead, ws);
  return outcome.started > 0;
}

void DelayedLos::speculate_next(const sched::SchedulerContext& ctx,
                                int max_skip_count, int lookahead,
                                DpWorkspace& ws, DpSpeculator& speculator,
                                std::vector<int>& spec_weights) {
  // Predict the *next* cycle's Basic_DP instance.  The dominant next event
  // is a completion, and `active` is sorted ascending by planned end, so
  // the front runner finishes first; its allocation returns to the free
  // pool.  Replicate step()'s branch-1 eligibility against that capacity —
  // if the prediction is wrong the warmed cache entry simply never hits.
  if (!speculator.idle()) return;
  if (ctx.active == nullptr || ctx.active->empty()) return;
  sched::JobRun* head = ctx.batch_head();
  if (head == nullptr) return;

  const int grain = ctx.machine->granularity();
  const int m = ctx.free() + ctx.alloc_of(*ctx.active->front());
  const int head_alloc = ctx.alloc_of(*head);
  if (head_alloc > m) return;                  // reservation path, no Basic_DP
  if (head->scount >= max_skip_count) return;  // direct start, no Basic_DP

  spec_weights.clear();
  int scanned = 0;
  int total = 0;
  for (sched::JobRun* job : *ctx.batch) {
    if (scanned++ >= lookahead) break;
    const int alloc = ctx.alloc_of(*job);
    if (alloc > m) continue;
    spec_weights.push_back(alloc / grain);
    total += alloc / grain;
  }
  // An empty or everything-fits instance is answered by basic_dp's fast
  // path without a table — nothing worth precomputing.
  if (spec_weights.empty() || total <= m / grain) return;

  if (speculator.launch(spec_weights, m / grain))
    ++ws.counters.spec_launched;
}

void DelayedLos::cycle(sched::SchedulerContext& ctx) {
  // Algorithm 1 describes a single pass per scheduling event; iterating to a
  // fixpoint is equivalent to re-invoking it while it makes progress and
  // avoids leaving startable capacity idle until the next event.  Skip
  // counting stays per-event (first pass only).
  bool first = true;
  while (step(ctx, max_skip_count_, lookahead_, ws_, first)) {
    first = false;
  }
}

}  // namespace es::core
