#include "core/delayed_los.hpp"

#include <vector>

#include "sched/reservation.hpp"
#include "util/check.hpp"

namespace es::core {

bool DelayedLos::step(sched::SchedulerContext& ctx, int max_skip_count,
                      int lookahead, DpWorkspace& ws,
                      bool allow_skip_increment) {
  const int m = ctx.free();
  sched::JobRun* head = ctx.batch_head();
  if (m <= 0 || head == nullptr) return false;  // Alg. 1 line 2

  const int grain = ctx.machine->granularity();
  const int head_alloc = ctx.alloc_of(*head);

  if (head_alloc <= m && head->scount >= max_skip_count) {
    // Lines 3-5: patience exhausted — start the head right away.
    ctx.start(head);
    return true;
  }

  if (head_alloc <= m) {
    // Lines 6-11: Basic_DP over the first `lookahead` waiting jobs.
    std::vector<sched::JobRun*> eligible;
    std::vector<int> weights;
    int scanned = 0;
    for (sched::JobRun* job : *ctx.batch) {
      if (scanned++ >= lookahead) break;
      const int alloc = ctx.alloc_of(*job);
      if (alloc > m) continue;
      eligible.push_back(job);
      weights.push_back(alloc / grain);
    }
    const auto selected = basic_dp(weights, m / grain, ws);
    ES_ASSERT(!selected.empty());  // the head alone always fits
    bool head_selected = false;
    int started = 0;
    for (int index : selected) {
      sched::JobRun* job = eligible[static_cast<std::size_t>(index)];
      if (job == head) head_selected = true;
      ctx.start(job);
      ++started;
    }
    if (!head_selected && allow_skip_increment) ++head->scount;  // line 9
    return started > 0;
  }

  // Lines 12-20: the head does not fit — give it the shadow reservation and
  // pack the queue around it with Reservation_DP.  When node failures have
  // pushed the head's need beyond the in-service capacity, no reservation
  // is computable (no completion frees offline processors): pack without
  // one until the machine is repaired.
  sched::Freeze freeze;
  if (head_alloc <= ctx.machine->available())
    freeze = sched::shadow_for_blocked(ctx, head_alloc);
  const auto outcome = run_reservation_dp(ctx, freeze, lookahead, ws);
  return outcome.started > 0;
}

void DelayedLos::cycle(sched::SchedulerContext& ctx) {
  // Algorithm 1 describes a single pass per scheduling event; iterating to a
  // fixpoint is equivalent to re-invoking it while it makes progress and
  // avoids leaving startable capacity idle until the next event.  Skip
  // counting stays per-event (first pass only).
  bool first = true;
  while (step(ctx, max_skip_count_, lookahead_, ws_, first)) {
    first = false;
  }
}

}  // namespace es::core
