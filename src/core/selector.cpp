#include "core/selector.hpp"

#include <algorithm>

#include "snap/snapshot.hpp"

namespace es::core {

AdaptiveSelector::AdaptiveSelector(Options options)
    : options_(options),
      delayed_(options.max_skip_count, options.lookahead),
      easy_(false) {}

void AdaptiveSelector::observe_arrivals(const sched::SchedulerContext& ctx) {
  // New arrivals appear at the back of the batch queue; job IDs are
  // arrival-ordered in generated and archive workloads, so a high-water
  // mark identifies the unseen ones.
  for (const sched::JobRun* job : *ctx.batch) {
    if (job->id <= last_seen_id_) continue;
    last_seen_id_ = std::max(last_seen_id_, job->id);
    window_.push_back(job->num <= options_.small_threshold);
    if (window_.size() > options_.window) window_.pop_front();
  }
}

double AdaptiveSelector::small_fraction() const {
  if (window_.empty()) return 0.0;
  const auto small =
      std::count(window_.begin(), window_.end(), true);
  return static_cast<double>(small) / static_cast<double>(window_.size());
}

void AdaptiveSelector::save_state(snap::SnapshotWriter& writer) const {
  writer.i64(last_seen_id_);
  writer.boolean(using_easy_);
  writer.u64(window_.size());
  for (const bool small : window_) writer.boolean(small);
}

void AdaptiveSelector::restore_state(snap::SnapshotReader& reader) {
  last_seen_id_ = reader.i64();
  using_easy_ = reader.boolean();
  const std::uint64_t count = reader.u64();
  window_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    window_.push_back(reader.boolean());
  }
}

void AdaptiveSelector::cycle(sched::SchedulerContext& ctx) {
  observe_arrivals(ctx);
  using_easy_ = small_fraction() >= options_.easy_fraction;
  if (using_easy_) {
    easy_.cycle(ctx);
  } else {
    delayed_.cycle(ctx);
  }
}

}  // namespace es::core
