// Algorithm factory: instantiates every algorithm of the paper's Table III
// (plus the FCFS / Conservative baselines and the Adaptive extension) from
// its canonical name.
//
//   name            workload        ECC processor
//   EASY            batch           no          EASY-E          yes
//   EASY-D          heterogeneous   no          EASY-DE         yes
//   LOS             batch           no          LOS-E           yes
//   LOS-D           heterogeneous   no          LOS-DE          yes
//   Delayed-LOS     batch           no          Delayed-LOS-E   yes
//   Hybrid-LOS      heterogeneous   no          Hybrid-LOS-E    yes
//
// The ECC processor is an engine attachment, so the factory returns the
// policy together with the `process_eccs` flag for sched::EngineConfig.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dp.hpp"
#include "sched/engine_config.hpp"
#include "sched/scheduler.hpp"

namespace es::core {

/// Tunables shared by the LOS family, plus the engine configuration.
struct AlgorithmOptions {
  int max_skip_count = 7;  ///< C_s for Delayed-LOS / Hybrid-LOS
  int lookahead = 50;      ///< DP lookahead depth (Shmueli's 50-job limit)
  /// Memoize knapsack instances across scheduling events (core/dp.hpp).
  /// Cached runs schedule bit-identically to uncached ones; the switch
  /// exists so tests and perf baselines can prove it.
  bool dp_cache = true;
  /// Result-cache slot count (see DpWorkspace::set_cache_slots).  Values
  /// < 1 are clamped to 1 inside the workspace.
  int dp_cache_slots = static_cast<int>(DpWorkspace::kDefaultCacheSlots);
  /// The one engine configuration, flowing unchanged factory ->
  /// experiment -> simrun/bench.  The run paths override the machine
  /// shape from the workload and process_eccs / allow_running_resize
  /// from the algorithm name (see exp::run_workload).
  sched::EngineConfig engine{};
};

/// A constructed algorithm: the policy plus its engine attachments.
/// `policy` is never null — make_algorithm throws on unknown names.
struct Algorithm {
  std::unique_ptr<sched::Scheduler> policy;
  bool process_eccs = false;
  bool allow_running_resize = false;
  std::string canonical_name;
};

/// Thrown by make_algorithm for names outside algorithm_names(); carries
/// the offending name and the known-name list in what().
class UnknownAlgorithmError : public std::invalid_argument {
 public:
  explicit UnknownAlgorithmError(const std::string& name);
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Builds an algorithm by name (case-insensitive; both "Delayed-LOS" and
/// "delayed-los" work).  Throws UnknownAlgorithmError for unknown names,
/// so a returned Algorithm always has a non-null policy.
Algorithm make_algorithm(const std::string& name,
                         const AlgorithmOptions& options = {});

/// True when `name` would construct (the non-throwing validity probe for
/// CLI front-ends that want exit codes instead of exceptions).
bool is_algorithm_name(const std::string& name);

/// All Table-III names in the paper's order, plus the extras.
std::vector<std::string> algorithm_names();

}  // namespace es::core
