// Algorithm factory: instantiates every algorithm of the paper's Table III
// (plus the FCFS / Conservative baselines and the Adaptive extension) from
// its canonical name.
//
//   name            workload        ECC processor
//   EASY            batch           no          EASY-E          yes
//   EASY-D          heterogeneous   no          EASY-DE         yes
//   LOS             batch           no          LOS-E           yes
//   LOS-D           heterogeneous   no          LOS-DE          yes
//   Delayed-LOS     batch           no          Delayed-LOS-E   yes
//   Hybrid-LOS      heterogeneous   no          Hybrid-LOS-E    yes
//
// The ECC processor is an engine attachment, so the factory returns the
// policy together with the `process_eccs` flag for sched::EngineConfig.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/failure_model.hpp"
#include "sched/scheduler.hpp"
#include "sim/watchdog.hpp"

namespace es::core {

/// Tunables shared by the LOS family, plus engine attachments.
struct AlgorithmOptions {
  int max_skip_count = 7;  ///< C_s for Delayed-LOS / Hybrid-LOS
  int lookahead = 50;      ///< DP lookahead depth (Shmueli's 50-job limit)
  /// Memoize knapsack instances across scheduling events (core/dp.hpp).
  /// Cached runs schedule bit-identically to uncached ones; the switch
  /// exists so tests and perf baselines can prove it.
  bool dp_cache = true;
  /// Let EP/RP resize running jobs work-conservingly (section-VI
  /// extension).  Only meaningful for the -E variants; an engine
  /// attachment, carried here so experiment specs stay one struct.
  bool allow_running_resize = false;
  /// Attach a full schedule audit trace to the result (engine attachment).
  bool record_trace = false;
  /// Fault injection (engine attachment; disabled by default).
  fault::FailureModelConfig failure{};
  /// What happens to jobs preempted by a node failure.
  fault::RequeuePolicy requeue = fault::RequeuePolicy::kRequeueHead;
  /// Checkpoint/restart recovery for preempted jobs (engine attachment;
  /// disabled by default).
  fault::CheckpointConfig checkpoint{};
  /// Watchdog budgets (engine attachment; disabled by default).
  sim::WatchdogConfig watchdog{};
};

/// A constructed algorithm: the policy plus its engine attachments.
struct Algorithm {
  std::unique_ptr<sched::Scheduler> policy;
  bool process_eccs = false;
  bool allow_running_resize = false;
  std::string canonical_name;
};

/// Builds an algorithm by name (case-insensitive; both "Delayed-LOS" and
/// "delayed-los" work).  Returns an empty policy for unknown names.
Algorithm make_algorithm(const std::string& name,
                         const AlgorithmOptions& options = {});

/// All Table-III names in the paper's order, plus the extras.
std::vector<std::string> algorithm_names();

}  // namespace es::core
