// Dynamic algorithm-selection policy — the extension sketched in the
// paper's section V-A: "This observation can lead to design of a dynamic,
// algorithm selection policy that selects the best performing algorithm
// among Delayed-LOS and EASY, for different proportions of small and large
// sized jobs."
//
// The selector tracks the small-job fraction over a sliding window of
// arrivals and delegates each cycle to EASY when small jobs dominate
// (where Fig. 8 shows EASY ~ Delayed-LOS but both beat LOS) and to
// Delayed-LOS otherwise (where Fig. 7 shows Delayed-LOS winning outright).
#pragma once

#include <deque>
#include <memory>

#include "core/delayed_los.hpp"
#include "sched/easy.hpp"
#include "sched/scheduler.hpp"

namespace es::core {

class AdaptiveSelector : public sched::Scheduler {
 public:
  struct Options {
    /// Jobs at or below this size (processors) count as "small"; defaults to
    /// the paper's small-job range {32, 64, 96}.
    int small_threshold = 96;
    /// Delegate to EASY when the windowed small-job fraction reaches this.
    double easy_fraction = 0.7;
    /// Sliding window length, in observed arrivals.
    std::size_t window = 64;
    int max_skip_count = 7;
    int lookahead = 50;
  };

  AdaptiveSelector() : AdaptiveSelector(Options{}) {}
  explicit AdaptiveSelector(Options options);

  std::string name() const override { return "Adaptive"; }
  void cycle(sched::SchedulerContext& ctx) override;

  /// Current windowed small-job fraction (for tests/diagnostics).
  double small_fraction() const;
  /// Which delegate the last cycle used (for tests): true = EASY.
  bool using_easy() const { return using_easy_; }

  sched::DpCounters dp_counters() const override {
    return delayed_.dp_counters();
  }
  void set_dp_cache(bool enabled) override { delayed_.set_dp_cache(enabled); }
  void set_dp_cache_slots(std::size_t slots) override {
    delayed_.set_dp_cache_slots(slots);
  }

  /// Speculate only while delegating to Delayed-LOS; EASY has no DP kernel,
  /// so a speculation launched from an EASY phase could never hit.
  void speculate(const sched::SchedulerContext& ctx) override {
    if (!using_easy_) delayed_.speculate(ctx);
  }
  void settle_speculation() override { delayed_.settle_speculation(); }
  void finish_speculation() override { delayed_.finish_speculation(); }

  /// The selector is the one factory policy with semantic cross-cycle
  /// state: the sliding arrival window, its high-water mark, and the last
  /// delegate choice all steer future cycles, so they must survive a
  /// snapshot restore or the resumed run would re-warm the window from
  /// empty and pick different delegates.
  void save_state(snap::SnapshotWriter& writer) const override;
  void restore_state(snap::SnapshotReader& reader) override;

 private:
  void observe_arrivals(const sched::SchedulerContext& ctx);

  Options options_;
  DelayedLos delayed_;
  sched::Easy easy_;
  std::deque<bool> window_;             ///< arrival history: small?
  workload::JobId last_seen_id_ = 0;    ///< high-water mark of observed jobs
  bool using_easy_ = false;
};

}  // namespace es::core
