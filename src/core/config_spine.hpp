// The configuration spine: one ParamRegistry covering AlgorithmOptions (and
// through it the whole EngineConfig tree) plus the workload-generator
// tenancy knobs.  simrun, every bench binary, and tests route config files,
// --dump-config, --list-params, and finalize-time validation through these
// two calls instead of hand-rolling option plumbing.
#pragma once

#include "core/factory.hpp"
#include "util/param_registry.hpp"
#include "workload/generator.hpp"

namespace es::core {

/// Registers the algorithm.* tunables plus every engine.* / failure.* /
/// checkpoint.* / watchdog.* / snapshot.* / fairshare.* / pool.* parameter
/// against `options`'s live storage.  The registry must not outlive
/// `options`.
void register_run_params(util::ParamRegistry& registry,
                         AlgorithmOptions& options);

/// Registers the tenancy.* generator knobs (Zipf users over pools).
void register_tenancy_params(util::ParamRegistry& registry,
                             workload::GeneratorConfig& config);

}  // namespace es::core
