// Speculative cycle pipelining (tentpole lever 3): while the engine drains
// events between scheduling cycles, precompute the *next* cycle's Basic_DP
// table on the global util::ThreadPool and warm the policy's result cache
// with it.
//
// Safety argument, in order of the data flow:
//  * launch() hands the fill a value copy of the predicted instance — no
//    pointers into engine or policy state cross the thread boundary.
//  * The fill runs on a private scratch workspace; its counters and timing
//    are discarded (spec fills are excluded from table_seconds by design).
//  * settle() runs on the owning thread and merely inserts the finished
//    (instance, selection) pair into the policy cache via
//    warm_basic_dp_cache, marked speculative.  The cache is exact-keyed, so
//    a later basic_dp() call either hits the identical instance (returning
//    the identical selection the fill it skipped would have produced) or
//    ignores the entry.  Scheduling decisions therefore cannot change —
//    only wall time and the diagnostic spec_* counters, which are excluded
//    from result fingerprints and snapshot serialization.
//  * At most one speculation is in flight; the state machine is a single
//    atomic (idle -> running -> done -> idle) with release/acquire pairing
//    on the done transition, so the owner reads the fill's output only
//    after the worker finished writing it.
#pragma once

#include <atomic>
#include <vector>

#include "core/dp.hpp"

namespace es::core {

/// One in-flight speculative Basic_DP fill; owned by a policy instance.
class DpSpeculator {
 public:
  DpSpeculator() = default;
  ~DpSpeculator() { wait(); }
  DpSpeculator(const DpSpeculator&) = delete;
  DpSpeculator& operator=(const DpSpeculator&) = delete;

  /// True when nothing is in flight or awaiting settle.
  bool idle() const {
    return state_.load(std::memory_order_acquire) == kIdle;
  }

  /// Starts an off-thread fill for (weights, capacity_grains).  Returns
  /// false — leaving all state untouched — when a previous speculation has
  /// not settled or the global pool is unavailable (serial mode, or the
  /// caller is itself a pool worker running a campaign replication).
  bool launch(const std::vector<int>& weights, int capacity_grains);

  /// Non-blocking: if the in-flight fill completed, warm `ws`'s result
  /// cache with it and return to idle.  Call before each cycle.
  void settle(DpWorkspace& ws);

  /// Run-end barrier: block until any in-flight fill completes, then drop
  /// the result (counted in ws.counters.spec_discarded).  The fill task
  /// captures `this`, so owners must drain before reuse across runs.
  void drain(DpWorkspace& ws);

 private:
  void wait();

  static constexpr int kIdle = 0;
  static constexpr int kRunning = 1;
  static constexpr int kDone = 2;

  std::atomic<int> state_{kIdle};
  std::vector<int> weights_;
  int capacity_ = 0;
  std::vector<int> selected_;
  DpWorkspace fill_ws_;  ///< off-thread scratch; counters/timing discarded
};

}  // namespace es::core
