// Hybrid-LOS (paper Algorithm 2) — the paper's second contribution:
// Delayed-LOS extended to heterogeneous workloads.
//
// Batch jobs are packed for maximum utilization *around* explicit
// reservations for dedicated (rigid start-time) jobs:
//  * with no dedicated jobs pending, Algorithm 2 degenerates to Delayed-LOS;
//  * a due dedicated job (requested start reached) moves to the batch-queue
//    head with a saturated skip count (Algorithm 3) and starts as soon as it
//    fits;
//  * a future dedicated group imposes a freeze (end time + capacity) that
//    Reservation_DP honours while packing batch jobs — shifted later when
//    the machine cannot host the whole group at its requested start (the
//    "unavoidable delay" branch, lines 23-30);
//  * a batch head whose skip count exceeds C_s is started right away when it
//    fits (lines 35-37), bounding batch waiting times even under a stream of
//    dedicated reservations.
#pragma once

#include <vector>

#include "core/delayed_los.hpp"
#include "core/dp.hpp"
#include "core/dp_speculator.hpp"
#include "sched/scheduler.hpp"

namespace es::core {

class HybridLos : public sched::Scheduler {
 public:
  explicit HybridLos(int max_skip_count = 7, int lookahead = 50)
      : max_skip_count_(max_skip_count), lookahead_(lookahead) {}

  std::string name() const override { return "Hybrid-LOS"; }
  bool supports_dedicated() const override { return true; }
  void cycle(sched::SchedulerContext& ctx) override;

  int max_skip_count() const { return max_skip_count_; }

  sched::DpCounters dp_counters() const override { return ws_.counters; }
  void set_dp_cache(bool enabled) override { ws_.cache_enabled = enabled; }
  void set_dp_cache_slots(std::size_t slots) override {
    ws_.set_cache_slots(slots);
  }

  /// Algorithm 2 degenerates to Delayed-LOS while no dedicated jobs are
  /// pending, so the same next-completion prediction applies there; with a
  /// dedicated reservation in play the next cycle runs Reservation_DP,
  /// which is not speculated.
  void speculate(const sched::SchedulerContext& ctx) override {
    if (ctx.dedicated != nullptr && !ctx.dedicated->empty()) return;
    DelayedLos::speculate_next(ctx, max_skip_count_, lookahead_, ws_,
                               speculator_, spec_weights_);
  }
  void settle_speculation() override { speculator_.settle(ws_); }
  void finish_speculation() override { speculator_.drain(ws_); }

 private:
  /// One Algorithm-2 pass; returns true on progress (job started or
  /// dedicated head moved).
  bool step(sched::SchedulerContext& ctx, bool allow_skip_increment);

  int max_skip_count_;
  int lookahead_;
  DpWorkspace ws_;
  DpSpeculator speculator_;
  std::vector<int> spec_weights_;
};

}  // namespace es::core
