#include "core/dp.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace es::core {
namespace {

/// Secondary-objective encoding: value = weight * kPriorityBase + (n - i),
/// so any extra grain of utilization dominates, and among equal-utilization
/// sets the one containing earlier (and more) jobs wins.  kPriorityBase must
/// exceed the largest possible secondary sum.
std::int64_t priority_base(std::size_t n) {
  return static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n) + 1;
}

std::int64_t item_value(int weight, std::size_t index, std::size_t n,
                        std::int64_t base) {
  return static_cast<std::int64_t>(weight) * base +
         static_cast<std::int64_t>(n - index);
}

// Bitpacked keep table: one take/skip bit per (item, cell).
void keep_clear(DpWorkspace& ws, std::size_t bits) {
  ws.keep.assign((bits + 63) / 64, 0);
}
inline void keep_set(DpWorkspace& ws, std::size_t bit) {
  ws.keep[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}
inline bool keep_get(const DpWorkspace& ws, std::size_t bit) {
  return (ws.keep[bit >> 6] >> (bit & 63)) & 1;
}

/// Fast path: when every positive-weight item fits together (total demand
/// <= capacity, and total shadow demand <= shadow capacity), "take them
/// all" is the unique optimum — each item adds its full weight of primary
/// value plus a positive tie-break term, so no proper subset can match it.
/// Returns true and fills `selected` (ascending) when it applies.
bool fits_entirely(std::span<const int> weights,
                   std::span<const int> shadow_weights, int capacity,
                   int shadow_capacity, std::vector<int>& selected) {
  std::int64_t total = 0;
  std::int64_t shadow_total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0) continue;
    total += w;
    if (!shadow_weights.empty()) shadow_total += shadow_weights[i];
  }
  if (total > capacity || shadow_total > shadow_capacity) return false;
  selected.clear();
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (weights[i] > 0) selected.push_back(static_cast<int>(i));
  return true;
}

/// Canonical cache key: items the table fill can never select — weight 0,
/// weight over capacity, or (reservation) shadow weight over the shadow
/// capacity — are skipped by the fill, produce no keep bits, and are never
/// read at backtrack, so zeroing them out changes nothing about the
/// selection.  Keying the cache on the normalized weights lets instances
/// that differ only in ineligible items share one entry — common under
/// high load, where most of a deep queue exceeds the few free grains.
/// Item count and capacities stay in the key: the tie-break encoding
/// depends on n, and eligibility depends on the capacities.
void normalize_key(std::span<const int> weights,
                   std::span<const int> shadow_weights, int capacity,
                   int shadow_capacity, std::vector<int>& key_weights,
                   std::vector<int>& key_shadows) {
  const std::size_t n = weights.size();
  key_weights.resize(n);
  key_shadows.resize(shadow_weights.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    const int s = shadow_weights.empty() ? 0 : shadow_weights[i];
    const bool skipped = w == 0 || w > capacity || s > shadow_capacity;
    key_weights[i] = skipped ? 0 : w;
    if (!shadow_weights.empty()) key_shadows[i] = skipped ? 0 : s;
  }
}

/// FNV-1a over the full instance key.  A prescreen only: equal
/// fingerprints still take the element-wise compare, so a collision can
/// cost a redundant scan but never a wrong answer.
std::uint64_t instance_fingerprint(bool reservation,
                                   std::span<const int> weights,
                                   std::span<const int> shadow_weights,
                                   int capacity, int shadow_capacity) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
  };
  mix(reservation ? 1 : 0);
  mix(static_cast<std::uint64_t>(capacity));
  mix(static_cast<std::uint64_t>(shadow_capacity));
  mix(weights.size());
  for (const int w : weights) mix(static_cast<std::uint64_t>(w));
  for (const int s : shadow_weights) mix(static_cast<std::uint64_t>(s));
  return hash;
}

/// Exact-key cache probe.  `shadow_weights` is empty for basic_dp lookups.
const std::vector<int>* cache_find(const DpWorkspace& ws, bool reservation,
                                   std::uint64_t fingerprint,
                                   std::span<const int> weights,
                                   std::span<const int> shadow_weights,
                                   int capacity, int shadow_capacity) {
  for (const DpWorkspace::CacheEntry& entry : ws.cache) {
    if (!entry.used || entry.fingerprint != fingerprint) continue;
    if (entry.reservation != reservation) continue;
    if (entry.capacity != capacity ||
        entry.shadow_capacity != shadow_capacity)
      continue;
    if (entry.weights.size() != weights.size()) continue;
    if (!std::equal(weights.begin(), weights.end(), entry.weights.begin()))
      continue;
    if (reservation &&
        !std::equal(shadow_weights.begin(), shadow_weights.end(),
                    entry.shadow_weights.begin()))
      continue;
    return &entry.selected;
  }
  return nullptr;
}

void cache_store(DpWorkspace& ws, bool reservation, std::uint64_t fingerprint,
                 std::span<const int> weights,
                 std::span<const int> shadow_weights, int capacity,
                 int shadow_capacity, const std::vector<int>& selected) {
  DpWorkspace::CacheEntry& entry = ws.cache[ws.cache_clock];
  ws.cache_clock = (ws.cache_clock + 1) % ws.cache.size();
  entry.used = true;
  entry.reservation = reservation;
  entry.capacity = capacity;
  entry.shadow_capacity = shadow_capacity;
  entry.fingerprint = fingerprint;
  entry.weights.assign(weights.begin(), weights.end());
  entry.shadow_weights.assign(shadow_weights.begin(), shadow_weights.end());
  entry.selected = selected;
}

}  // namespace

namespace detail {

namespace {

/// Column width of one parallel block.  Large enough that a block's fill
/// amortizes the pool dispatch, and a multiple of 64 so every block's keep
/// bits land in its own words (the row stride is also 64-aligned).
constexpr std::size_t kBlockCols = 8192;

/// Blocked double-buffered fill for wide Basic_DP tables.  Row i is
/// computed from row i-1 (`prev` -> `cur`) tile by tile; tiles are
/// independent because cell c only reads prev[c] and prev[c - w].  Each
/// tile writes a disjoint cur range and — because both the tile origin and
/// the keep-row stride are multiples of 64 — disjoint keep words, so the
/// tiles of one row can fan out across the thread pool race-free.  The
/// recurrence is the exact in-place recurrence of the serial fill (the
/// descending in-place loop reads only not-yet-written cells, i.e. the
/// previous row), so selections are identical by construction; the
/// equivalence is additionally gated by tests and the perf_baseline
/// parallel-DP leg.
std::vector<int> basic_dp_table_blocked(std::span<const int> weights,
                                        int capacity, DpWorkspace& ws) {
  const std::size_t n = weights.size();
  const std::int64_t base = priority_base(n);
  const std::size_t cols = static_cast<std::size_t>(capacity) + 1;
  const std::size_t stride = (cols + 63) & ~std::size_t{63};
  const std::size_t blocks = (cols + kBlockCols - 1) / kBlockCols;

  ws.value.assign(cols, 0);
  ws.value2.assign(cols, 0);
  keep_clear(ws, n * stride);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cols;  // logical cells, same as serial

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0 || w > capacity) continue;  // row carries over: no swap
    const std::size_t sw = static_cast<std::size_t>(w);
    const std::int64_t v = item_value(w, i, n, base);
    const std::int64_t* prev = ws.value.data();
    std::int64_t* cur = ws.value2.data();
    util::parallel_for_each(blocks, [&](std::size_t block) {
      const std::size_t lo = block * kBlockCols;
      const std::size_t hi = std::min(cols, lo + kBlockCols);
      std::size_t c = lo;
      for (const std::size_t skip = std::min(hi, sw); c < skip; ++c)
        cur[c] = prev[c];
      for (; c < hi; ++c) {
        const std::int64_t candidate = prev[c - sw] + v;
        if (candidate > prev[c]) {
          cur[c] = candidate;
          keep_set(ws, i * stride + c);
        } else {
          cur[c] = prev[c];
        }
      }
    });
    std::swap(ws.value, ws.value2);
  }

  std::vector<int> selected;
  std::size_t c = cols - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * stride + c)) {
      selected.push_back(static_cast<int>(i));
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace

std::vector<int> basic_dp_table(std::span<const int> weights, int capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::size_t cols = static_cast<std::size_t>(capacity) + 1;

  // Wide tables (far beyond the BlueGene/P 11-column shape) go through the
  // blocked fill, parallel when a pool is up.  Narrow tables keep the
  // in-place single-buffer loop — better locality, no barrier per row.
  if (cols >= kBlockCols && util::global_parallelism() > 1)
    return basic_dp_table_blocked(weights, capacity, ws);

  const std::int64_t base = priority_base(n);
  ws.value.assign(cols, 0);
  keep_clear(ws, n * cols);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cols;

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0 || w > capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t c = cols - 1; c >= static_cast<std::size_t>(w); --c) {
      const std::int64_t candidate = ws.value[c - static_cast<std::size_t>(w)] + v;
      if (candidate > ws.value[c]) {
        ws.value[c] = candidate;
        keep_set(ws, i * cols + c);
      }
    }
  }

  std::vector<int> selected;
  std::size_t c = cols - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * cols + c)) {
      selected.push_back(static_cast<int>(i));
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

std::vector<int> reservation_dp_table(std::span<const int> weights,
                                      std::span<const int> shadow_weights,
                                      int capacity, int shadow_capacity,
                                      DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::int64_t base = priority_base(n);
  const std::size_t c1 = static_cast<std::size_t>(capacity) + 1;
  const std::size_t c2 = static_cast<std::size_t>(shadow_capacity) + 1;
  const std::size_t cells = c1 * c2;

  ws.value.assign(cells, 0);
  keep_clear(ws, n * cells);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cells;
  auto cell = [c2](std::size_t a, std::size_t b) { return a * c2 + b; };

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    const int s = shadow_weights[i];
    ES_EXPECTS(w >= 0 && s >= 0);
    ES_EXPECTS(s == 0 || s == w);  // frenum is 0 or the job size
    if (w == 0 || w > capacity || s > shadow_capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t a = c1 - 1; a >= static_cast<std::size_t>(w); --a) {
      for (std::size_t b = c2 - 1; b >= static_cast<std::size_t>(s); --b) {
        const std::int64_t candidate =
            ws.value[cell(a - static_cast<std::size_t>(w),
                          b - static_cast<std::size_t>(s))] +
            v;
        if (candidate > ws.value[cell(a, b)]) {
          ws.value[cell(a, b)] = candidate;
          keep_set(ws, i * cells + cell(a, b));
        }
        if (b == 0) break;  // avoid size_t underflow
      }
      if (a == 0) break;
    }
  }

  std::vector<int> selected;
  std::size_t a = c1 - 1;
  std::size_t b = c2 - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * cells + cell(a, b))) {
      selected.push_back(static_cast<int>(i));
      a -= static_cast<std::size_t>(weights[i]);
      b -= static_cast<std::size_t>(shadow_weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace detail

std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ++ws.counters.calls;
  if (weights.empty() || capacity == 0) {
    ++ws.counters.fast_path;  // trivially empty: no table, no cache
    return {};
  }

  std::vector<int> selected;
  if (fits_entirely(weights, {}, capacity, 0, selected)) {
    ++ws.counters.fast_path;
    return selected;
  }
  if (ws.cache_enabled) {
    normalize_key(weights, {}, capacity, 0, ws.key_weights, ws.key_shadows);
    const std::uint64_t fp =
        instance_fingerprint(false, ws.key_weights, {}, capacity, 0);
    if (const std::vector<int>* hit =
            cache_find(ws, false, fp, ws.key_weights, {}, capacity, 0)) {
      ++ws.counters.cache_hits;
      return *hit;
    }
    selected = detail::basic_dp_table(weights, capacity, ws);
    cache_store(ws, false, fp, ws.key_weights, {}, capacity, 0, selected);
    return selected;
  }
  return detail::basic_dp_table(weights, capacity, ws);
}

std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  ++ws.counters.calls;
  if (weights.empty() || capacity == 0) {
    ++ws.counters.fast_path;  // trivially empty: no table, no cache
    return {};
  }

  std::vector<int> selected;
  if (fits_entirely(weights, shadow_weights, capacity, shadow_capacity,
                    selected)) {
    ++ws.counters.fast_path;
    return selected;
  }
  if (ws.cache_enabled) {
    normalize_key(weights, shadow_weights, capacity, shadow_capacity,
                  ws.key_weights, ws.key_shadows);
    const std::uint64_t fp = instance_fingerprint(
        true, ws.key_weights, ws.key_shadows, capacity, shadow_capacity);
    if (const std::vector<int>* hit =
            cache_find(ws, true, fp, ws.key_weights, ws.key_shadows,
                       capacity, shadow_capacity)) {
      ++ws.counters.cache_hits;
      return *hit;
    }
    selected = detail::reservation_dp_table(weights, shadow_weights, capacity,
                                            shadow_capacity, ws);
    cache_store(ws, true, fp, ws.key_weights, ws.key_shadows, capacity,
                shadow_capacity, selected);
    return selected;
  }
  return detail::reservation_dp_table(weights, shadow_weights, capacity,
                                      shadow_capacity, ws);
}

}  // namespace es::core
