#include "core/dp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace es::core {
namespace {

/// Secondary-objective encoding: value = weight * kPriorityBase + (n - i),
/// so any extra grain of utilization dominates, and among equal-utilization
/// sets the one containing earlier (and more) jobs wins.  kPriorityBase must
/// exceed the largest possible secondary sum.
std::int64_t priority_base(std::size_t n) {
  return static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n) + 1;
}

std::int64_t item_value(int weight, std::size_t index, std::size_t n,
                        std::int64_t base) {
  return static_cast<std::int64_t>(weight) * base +
         static_cast<std::int64_t>(n - index);
}

}  // namespace

std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::int64_t base = priority_base(n);
  const std::size_t cols = static_cast<std::size_t>(capacity) + 1;

  ws.value.assign(cols, 0);
  ws.keep.assign(n * cols, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0 || w > capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t c = cols - 1; c >= static_cast<std::size_t>(w); --c) {
      const std::int64_t candidate = ws.value[c - static_cast<std::size_t>(w)] + v;
      if (candidate > ws.value[c]) {
        ws.value[c] = candidate;
        ws.keep[i * cols + c] = 1;
      }
    }
  }

  std::vector<int> selected;
  std::size_t c = cols - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (ws.keep[i * cols + c]) {
      selected.push_back(static_cast<int>(i));
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::int64_t base = priority_base(n);
  const std::size_t c1 = static_cast<std::size_t>(capacity) + 1;
  const std::size_t c2 = static_cast<std::size_t>(shadow_capacity) + 1;
  const std::size_t cells = c1 * c2;

  ws.value.assign(cells, 0);
  ws.keep.assign(n * cells, 0);
  auto cell = [c2](std::size_t a, std::size_t b) { return a * c2 + b; };

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    const int s = shadow_weights[i];
    ES_EXPECTS(w >= 0 && s >= 0);
    ES_EXPECTS(s == 0 || s == w);  // frenum is 0 or the job size
    if (w == 0 || w > capacity || s > shadow_capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t a = c1 - 1; a >= static_cast<std::size_t>(w); --a) {
      for (std::size_t b = c2 - 1; b >= static_cast<std::size_t>(s); --b) {
        const std::int64_t candidate =
            ws.value[cell(a - static_cast<std::size_t>(w),
                          b - static_cast<std::size_t>(s))] +
            v;
        if (candidate > ws.value[cell(a, b)]) {
          ws.value[cell(a, b)] = candidate;
          ws.keep[i * cells + cell(a, b)] = 1;
        }
        if (b == 0) break;  // avoid size_t underflow
      }
      if (a == 0) break;
    }
  }

  std::vector<int> selected;
  std::size_t a = c1 - 1;
  std::size_t b = c2 - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (ws.keep[i * cells + cell(a, b)]) {
      selected.push_back(static_cast<int>(i));
      a -= static_cast<std::size_t>(weights[i]);
      b -= static_cast<std::size_t>(shadow_weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace es::core
