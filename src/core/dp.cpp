#include "core/dp.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

// Explicit-SIMD row update: compiled only on x86-64 and only when the build
// enables it (ES_DP_SIMD, default on).  Per-function target attributes keep
// the rest of the translation unit at the baseline ISA; the host's actual
// support is probed once at runtime.
#if defined(ES_DP_SIMD) && (defined(__x86_64__) || defined(_M_X64))
#define ES_DP_SIMD_X86 1
#include <immintrin.h>
#else
#define ES_DP_SIMD_X86 0
#endif

namespace es::core {
namespace {

/// Secondary-objective encoding: value = weight * kPriorityBase + (n - i),
/// so any extra grain of utilization dominates, and among equal-utilization
/// sets the one containing earlier (and more) jobs wins.  kPriorityBase must
/// exceed the largest possible secondary sum.
std::int64_t priority_base(std::size_t n) {
  return static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n) + 1;
}

std::int64_t item_value(int weight, std::size_t index, std::size_t n,
                        std::int64_t base) {
  return static_cast<std::int64_t>(weight) * base +
         static_cast<std::int64_t>(n - index);
}

// Bitpacked keep table: one take/skip bit per (item, cell).
void keep_clear(DpWorkspace& ws, std::size_t bits) {
  ws.keep.assign((bits + 63) / 64, 0);
}
inline void keep_set(DpWorkspace& ws, std::size_t bit) {
  ws.keep[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}
inline bool keep_get(const DpWorkspace& ws, std::size_t bit) {
  return (ws.keep[bit >> 6] >> (bit & 63)) & 1;
}

/// Fast path: when every positive-weight item fits together (total demand
/// <= capacity, and total shadow demand <= shadow capacity), "take them
/// all" is the unique optimum — each item adds its full weight of primary
/// value plus a positive tie-break term, so no proper subset can match it.
/// Returns true and fills `selected` (ascending) when it applies.
bool fits_entirely(std::span<const int> weights,
                   std::span<const int> shadow_weights, int capacity,
                   int shadow_capacity, std::vector<int>& selected) {
  std::int64_t total = 0;
  std::int64_t shadow_total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0) continue;
    total += w;
    if (!shadow_weights.empty()) shadow_total += shadow_weights[i];
  }
  if (total > capacity || shadow_total > shadow_capacity) return false;
  selected.clear();
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (weights[i] > 0) selected.push_back(static_cast<int>(i));
  return true;
}

/// Canonical cache key: items the table fill can never select — weight 0,
/// weight over capacity, or (reservation) shadow weight over the shadow
/// capacity — are skipped by the fill, produce no keep bits, and are never
/// read at backtrack, so zeroing them out changes nothing about the
/// selection.  Keying the cache on the normalized weights lets instances
/// that differ only in ineligible items share one entry — common under
/// high load, where most of a deep queue exceeds the few free grains.
/// Item count and capacities stay in the key: the tie-break encoding
/// depends on n, and eligibility depends on the capacities.
void normalize_key(std::span<const int> weights,
                   std::span<const int> shadow_weights, int capacity,
                   int shadow_capacity, std::vector<int>& key_weights,
                   std::vector<int>& key_shadows) {
  const std::size_t n = weights.size();
  key_weights.resize(n);
  key_shadows.resize(shadow_weights.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    const int s = shadow_weights.empty() ? 0 : shadow_weights[i];
    const bool skipped = w == 0 || w > capacity || s > shadow_capacity;
    key_weights[i] = skipped ? 0 : w;
    if (!shadow_weights.empty()) key_shadows[i] = skipped ? 0 : s;
  }
}

/// FNV-1a over the full instance key.  A prescreen only: equal
/// fingerprints still take the element-wise compare, so a collision can
/// cost a redundant scan but never a wrong answer.
std::uint64_t instance_fingerprint(bool reservation,
                                   std::span<const int> weights,
                                   std::span<const int> shadow_weights,
                                   int capacity, int shadow_capacity) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  const auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 0x100000001b3ULL;
  };
  mix(reservation ? 1 : 0);
  mix(static_cast<std::uint64_t>(capacity));
  mix(static_cast<std::uint64_t>(shadow_capacity));
  mix(weights.size());
  for (const int w : weights) mix(static_cast<std::uint64_t>(w));
  for (const int s : shadow_weights) mix(static_cast<std::uint64_t>(s));
  return hash;
}

/// Exact-key cache probe.  `shadow_weights` is empty for basic_dp lookups.
/// Returns the mutable entry so callers can account a speculative hit.
DpWorkspace::CacheEntry* cache_find(DpWorkspace& ws, bool reservation,
                                    std::uint64_t fingerprint,
                                    std::span<const int> weights,
                                    std::span<const int> shadow_weights,
                                    int capacity, int shadow_capacity) {
  // The dense fingerprint mirror keeps the probe to one sequential word
  // scan; entries are dereferenced only on agreement (see cache_fps).
  for (std::size_t i = 0; i < ws.cache_fps.size(); ++i) {
    if (ws.cache_fps[i] != fingerprint) continue;
    DpWorkspace::CacheEntry& entry = ws.cache[i];
    if (!entry.used || entry.fingerprint != fingerprint) continue;
    if (entry.reservation != reservation) continue;
    if (entry.capacity != capacity ||
        entry.shadow_capacity != shadow_capacity)
      continue;
    if (entry.weights.size() != weights.size()) continue;
    if (!std::equal(weights.begin(), weights.end(), entry.weights.begin()))
      continue;
    if (reservation &&
        !std::equal(shadow_weights.begin(), shadow_weights.end(),
                    entry.shadow_weights.begin()))
      continue;
    return &entry;
  }
  return nullptr;
}

/// Counts a probe hit, folding in the speculative-pipeline bookkeeping: a
/// first hit on a warmed entry also counts in spec_hits and clears the
/// flag (later hits on the same entry are ordinary).
const std::vector<int>& count_hit(DpWorkspace& ws,
                                  DpWorkspace::CacheEntry& entry) {
  ++ws.counters.cache_hits;
  if (entry.speculative) {
    entry.speculative = false;
    ++ws.counters.spec_hits;
  }
  return entry.selected;
}

void cache_store(DpWorkspace& ws, bool reservation, std::uint64_t fingerprint,
                 std::span<const int> weights,
                 std::span<const int> shadow_weights, int capacity,
                 int shadow_capacity, const std::vector<int>& selected) {
  DpWorkspace::CacheEntry& entry = ws.cache[ws.cache_clock];
  if (entry.used && entry.speculative) ++ws.counters.spec_discarded;
  ws.cache_fps[ws.cache_clock] = fingerprint;
  ws.cache_clock = (ws.cache_clock + 1) % ws.cache.size();
  entry.used = true;
  entry.speculative = false;
  entry.reservation = reservation;
  entry.capacity = capacity;
  entry.shadow_capacity = shadow_capacity;
  entry.fingerprint = fingerprint;
  entry.weights.assign(weights.begin(), weights.end());
  entry.shadow_weights.assign(shadow_weights.begin(), shadow_weights.end());
  entry.selected = selected;
}

/// Scope timer accumulating into DpCounters::table_seconds — the
/// denominator behind `simrun --perf-report`'s ns-per-DP-invocation row.
class TableTimer {
 public:
  explicit TableTimer(DpWorkspace& ws)
      : ws_(&ws), start_(std::chrono::steady_clock::now()) {}
  TableTimer(const TableTimer&) = delete;
  TableTimer& operator=(const TableTimer&) = delete;
  ~TableTimer() {
    ws_->counters.table_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
  }

 private:
  DpWorkspace* ws_;
  std::chrono::steady_clock::time_point start_;
};

std::atomic<bool> g_dp_simd_enabled{true};

DpSimdLevel detect_dp_simd_level() {
#if ES_DP_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return DpSimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return DpSimdLevel::kSse42;
#endif
  return DpSimdLevel::kScalar;
}

}  // namespace

DpSimdLevel dp_simd_level() {
  static const DpSimdLevel detected = detect_dp_simd_level();
  return g_dp_simd_enabled.load(std::memory_order_relaxed)
             ? detected
             : DpSimdLevel::kScalar;
}

void set_dp_simd_enabled(bool enabled) {
  g_dp_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool dp_simd_enabled() {
  return g_dp_simd_enabled.load(std::memory_order_relaxed);
}

const char* dp_simd_level_name(DpSimdLevel level) {
  switch (level) {
    case DpSimdLevel::kAvx2:
      return "avx2";
    case DpSimdLevel::kSse42:
      return "sse4.2";
    case DpSimdLevel::kScalar:
      return "scalar";
  }
  return "scalar";
}

namespace detail {

namespace {

// --- Basic_DP row update kernels ----------------------------------------
//
// One double-buffered row step over the column span [lo, hi): for item
// (w, v), cur[c] = max(prev[c], prev[c - w] + v), recording a keep bit
// where the candidate wins.  `keep_row` points at the row's first keep
// word (the row base is a multiple of 64, so bit c of the row is bit
// (c & 63) of keep_row[c >> 6]).  All tiers compute this identical
// recurrence; the SIMD tiers batch 64 columns per keep-word store, with
// scalar prologue/epilogue for the unaligned fringes (|= into words the
// batched stores never touch — the store target is always a whole,
// exclusively-owned word over a cleared table).
void fill_row_scalar(const std::int64_t* prev, std::int64_t* cur,
                     std::uint64_t* keep_row, std::size_t lo, std::size_t hi,
                     std::size_t w, std::int64_t v) {
  std::size_t c = lo;
  for (const std::size_t skip = std::min(hi, w); c < skip; ++c)
    cur[c] = prev[c];
  for (; c < hi; ++c) {
    const std::int64_t candidate = prev[c - w] + v;
    if (candidate > prev[c]) {
      cur[c] = candidate;
      keep_row[c >> 6] |= std::uint64_t{1} << (c & 63);
    } else {
      cur[c] = prev[c];
    }
  }
}

#if ES_DP_SIMD_X86

__attribute__((target("avx2"))) void fill_row_avx2(
    const std::int64_t* prev, std::int64_t* cur, std::uint64_t* keep_row,
    std::size_t lo, std::size_t hi, std::size_t w, std::int64_t v) {
  std::size_t c = lo;
  for (const std::size_t skip = std::min(hi, w); c < skip; ++c)
    cur[c] = prev[c];
  const auto scalar_step = [&](std::size_t col) {
    const std::int64_t candidate = prev[col - w] + v;
    if (candidate > prev[col]) {
      cur[col] = candidate;
      keep_row[col >> 6] |= std::uint64_t{1} << (col & 63);
    } else {
      cur[col] = prev[col];
    }
  };
  for (; c < hi && (c & 63) != 0; ++c) scalar_step(c);
  const __m256i vv = _mm256_set1_epi64x(v);
  for (; c + 64 <= hi; c += 64) {
    std::uint64_t word = 0;
    for (std::size_t k = 0; k < 64; k += 4) {
      const __m256i p = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(prev + c + k));
      const __m256i donor = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(prev + c + k - w));
      const __m256i cand = _mm256_add_epi64(donor, vv);
      // Values are non-negative and bounded far below 2^63 (weight * base
      // + tie-break over <= a few thousand items), so the signed 64-bit
      // compare is exact.
      const __m256i take = _mm256_cmpgt_epi64(cand, p);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + c + k),
                          _mm256_blendv_epi8(p, cand, take));
      word |= static_cast<std::uint64_t>(static_cast<unsigned>(
                  _mm256_movemask_pd(_mm256_castsi256_pd(take))))
              << k;
    }
    keep_row[c >> 6] = word;
  }
  for (; c < hi; ++c) scalar_step(c);
}

__attribute__((target("sse4.2"))) void fill_row_sse42(
    const std::int64_t* prev, std::int64_t* cur, std::uint64_t* keep_row,
    std::size_t lo, std::size_t hi, std::size_t w, std::int64_t v) {
  std::size_t c = lo;
  for (const std::size_t skip = std::min(hi, w); c < skip; ++c)
    cur[c] = prev[c];
  const auto scalar_step = [&](std::size_t col) {
    const std::int64_t candidate = prev[col - w] + v;
    if (candidate > prev[col]) {
      cur[col] = candidate;
      keep_row[col >> 6] |= std::uint64_t{1} << (col & 63);
    } else {
      cur[col] = prev[col];
    }
  };
  for (; c < hi && (c & 63) != 0; ++c) scalar_step(c);
  const __m128i vv = _mm_set1_epi64x(v);
  for (; c + 64 <= hi; c += 64) {
    std::uint64_t word = 0;
    for (std::size_t k = 0; k < 64; k += 2) {
      const __m128i p =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(prev + c + k));
      const __m128i donor = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(prev + c + k - w));
      const __m128i cand = _mm_add_epi64(donor, vv);
      const __m128i take = _mm_cmpgt_epi64(cand, p);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(cur + c + k),
                       _mm_blendv_epi8(p, cand, take));
      word |= static_cast<std::uint64_t>(static_cast<unsigned>(
                  _mm_movemask_pd(_mm_castsi128_pd(take))))
              << k;
    }
    keep_row[c >> 6] = word;
  }
  for (; c < hi; ++c) scalar_step(c);
}

#endif  // ES_DP_SIMD_X86

using RowFill = void (*)(const std::int64_t*, std::int64_t*, std::uint64_t*,
                         std::size_t, std::size_t, std::size_t, std::int64_t);

RowFill pick_row_fill() {
  switch (dp_simd_level()) {
#if ES_DP_SIMD_X86
    case DpSimdLevel::kAvx2:
      return fill_row_avx2;
    case DpSimdLevel::kSse42:
      return fill_row_sse42;
#endif
    default:
      return fill_row_scalar;
  }
}

/// Column width of one parallel block.  Large enough that a block's fill
/// amortizes the pool dispatch, and a multiple of 64 so every block's keep
/// bits land in its own words (the row stride is also 64-aligned).
constexpr std::size_t kBlockCols = 8192;

/// Minimum table width for the SIMD row update to pay off.  Below this the
/// in-place scalar loop wins on locality (the paper's BlueGene/P shape is
/// 11 columns); at or above it the double-buffered fill with the vector
/// kernel wins even single-threaded.
constexpr std::size_t kSimdCols = 128;

/// Blocked double-buffered fill for wide Basic_DP tables.  Row i is
/// computed from row i-1 (`prev` -> `cur`) tile by tile; tiles are
/// independent because cell c only reads prev[c] and prev[c - w].  Each
/// tile writes a disjoint cur range and — because both the tile origin and
/// the keep-row stride are multiples of 64 — disjoint keep words, so the
/// tiles of one row can fan out across the thread pool race-free.  The
/// recurrence is the exact in-place recurrence of the serial fill (the
/// descending in-place loop reads only not-yet-written cells, i.e. the
/// previous row), so selections are identical by construction; the
/// equivalence is additionally gated by tests and the perf_baseline
/// parallel-DP leg.  The per-tile row update dispatches to the widest
/// SIMD tier the host supports (see fill_row_* above) — every tier
/// computes the same recurrence, so the dispatch cannot change selections.
std::vector<int> basic_dp_table_blocked(std::span<const int> weights,
                                        int capacity, DpWorkspace& ws) {
  const std::size_t n = weights.size();
  const std::int64_t base = priority_base(n);
  const std::size_t cols = static_cast<std::size_t>(capacity) + 1;
  const std::size_t stride = (cols + 63) & ~std::size_t{63};
  const std::size_t blocks = (cols + kBlockCols - 1) / kBlockCols;
  const RowFill fill = pick_row_fill();

  ws.value.assign(cols, 0);
  ws.value2.assign(cols, 0);
  keep_clear(ws, n * stride);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cols;  // logical cells, same as serial

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0 || w > capacity) continue;  // row carries over: no swap
    const std::size_t sw = static_cast<std::size_t>(w);
    const std::int64_t v = item_value(w, i, n, base);
    const std::int64_t* prev = ws.value.data();
    std::int64_t* cur = ws.value2.data();
    std::uint64_t* keep_row = ws.keep.data() + (i * stride) / 64;
    util::parallel_for_each(blocks, [&](std::size_t block) {
      const std::size_t lo = block * kBlockCols;
      const std::size_t hi = std::min(cols, lo + kBlockCols);
      fill(prev, cur, keep_row, lo, hi, sw, v);
    });
    std::swap(ws.value, ws.value2);
  }

  std::vector<int> selected;
  std::size_t c = cols - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * stride + c)) {
      selected.push_back(static_cast<int>(i));
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace

std::vector<int> basic_dp_table(std::span<const int> weights, int capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::size_t cols = static_cast<std::size_t>(capacity) + 1;
  TableTimer timer(ws);

  // Wide tables (far beyond the BlueGene/P 11-column shape) go through the
  // blocked fill: parallel when a pool is up, and vectorized from a lower
  // width threshold when the host has a SIMD tier — the double-buffered
  // row update is what the vector kernels implement.  Narrow tables keep
  // the in-place single-buffer loop — better locality, no barrier per row.
  const bool wide_parallel =
      cols >= kBlockCols && util::global_parallelism() > 1;
  const bool wide_simd =
      cols >= kSimdCols && dp_simd_level() != DpSimdLevel::kScalar;
  if (wide_parallel || wide_simd)
    return basic_dp_table_blocked(weights, capacity, ws);

  const std::int64_t base = priority_base(n);
  ws.value.assign(cols, 0);
  keep_clear(ws, n * cols);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cols;

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0 || w > capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t c = cols - 1; c >= static_cast<std::size_t>(w); --c) {
      const std::int64_t candidate = ws.value[c - static_cast<std::size_t>(w)] + v;
      if (candidate > ws.value[c]) {
        ws.value[c] = candidate;
        keep_set(ws, i * cols + c);
      }
    }
  }

  std::vector<int> selected;
  std::size_t c = cols - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * cols + c)) {
      selected.push_back(static_cast<int>(i));
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

std::vector<int> reservation_dp_table(std::span<const int> weights,
                                      std::span<const int> shadow_weights,
                                      int capacity, int shadow_capacity,
                                      DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  TableTimer timer(ws);
  const std::int64_t base = priority_base(n);
  const std::size_t c1 = static_cast<std::size_t>(capacity) + 1;
  const std::size_t c2 = static_cast<std::size_t>(shadow_capacity) + 1;
  const std::size_t cells = c1 * c2;

  ws.value.assign(cells, 0);
  keep_clear(ws, n * cells);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cells;
  auto cell = [c2](std::size_t a, std::size_t b) { return a * c2 + b; };

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    const int s = shadow_weights[i];
    ES_EXPECTS(w >= 0 && s >= 0);
    ES_EXPECTS(s == 0 || s == w);  // frenum is 0 or the job size
    if (w == 0 || w > capacity || s > shadow_capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t a = c1 - 1; a >= static_cast<std::size_t>(w); --a) {
      for (std::size_t b = c2 - 1; b >= static_cast<std::size_t>(s); --b) {
        const std::int64_t candidate =
            ws.value[cell(a - static_cast<std::size_t>(w),
                          b - static_cast<std::size_t>(s))] +
            v;
        if (candidate > ws.value[cell(a, b)]) {
          ws.value[cell(a, b)] = candidate;
          keep_set(ws, i * cells + cell(a, b));
        }
        if (b == 0) break;  // avoid size_t underflow
      }
      if (a == 0) break;
    }
  }

  std::vector<int> selected;
  std::size_t a = c1 - 1;
  std::size_t b = c2 - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * cells + cell(a, b))) {
      selected.push_back(static_cast<int>(i));
      a -= static_cast<std::size_t>(weights[i]);
      b -= static_cast<std::size_t>(shadow_weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace detail

std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ++ws.counters.calls;
  if (weights.empty() || capacity == 0) {
    ++ws.counters.fast_path;  // trivially empty: no table, no cache
    return {};
  }

  std::vector<int> selected;
  if (fits_entirely(weights, {}, capacity, 0, selected)) {
    ++ws.counters.fast_path;
    return selected;
  }
  if (ws.cache_enabled) {
    normalize_key(weights, {}, capacity, 0, ws.key_weights, ws.key_shadows);
    const std::uint64_t fp =
        instance_fingerprint(false, ws.key_weights, {}, capacity, 0);
    if (DpWorkspace::CacheEntry* hit =
            cache_find(ws, false, fp, ws.key_weights, {}, capacity, 0))
      return count_hit(ws, *hit);
    selected = detail::basic_dp_table(weights, capacity, ws);
    cache_store(ws, false, fp, ws.key_weights, {}, capacity, 0, selected);
    return selected;
  }
  return detail::basic_dp_table(weights, capacity, ws);
}

void warm_basic_dp_cache(std::span<const int> weights, int capacity,
                         const std::vector<int>& selected, DpWorkspace& ws) {
  ES_EXPECTS(capacity > 0);
  if (!ws.cache_enabled || weights.empty()) return;
  // Key exactly as basic_dp() keys a probe for this instance, so a correct
  // prediction turns the next call's fill into a cache hit.
  normalize_key(weights, {}, capacity, 0, ws.key_weights, ws.key_shadows);
  const std::uint64_t fp =
      instance_fingerprint(false, ws.key_weights, {}, capacity, 0);
  if (cache_find(ws, false, fp, ws.key_weights, {}, capacity, 0) != nullptr)
    return;  // already cached: don't burn a slot (or the speculative flag)
  cache_store(ws, false, fp, ws.key_weights, {}, capacity, 0, selected);
  const std::size_t slot =
      (ws.cache_clock + ws.cache.size() - 1) % ws.cache.size();
  ws.cache[slot].speculative = true;
}

std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  ++ws.counters.calls;
  if (weights.empty() || capacity == 0) {
    ++ws.counters.fast_path;  // trivially empty: no table, no cache
    return {};
  }

  std::vector<int> selected;
  if (fits_entirely(weights, shadow_weights, capacity, shadow_capacity,
                    selected)) {
    ++ws.counters.fast_path;
    return selected;
  }
  if (ws.cache_enabled) {
    normalize_key(weights, shadow_weights, capacity, shadow_capacity,
                  ws.key_weights, ws.key_shadows);
    const std::uint64_t fp = instance_fingerprint(
        true, ws.key_weights, ws.key_shadows, capacity, shadow_capacity);
    if (DpWorkspace::CacheEntry* hit =
            cache_find(ws, true, fp, ws.key_weights, ws.key_shadows,
                       capacity, shadow_capacity))
      return count_hit(ws, *hit);
    selected = detail::reservation_dp_table(weights, shadow_weights, capacity,
                                            shadow_capacity, ws);
    cache_store(ws, true, fp, ws.key_weights, ws.key_shadows, capacity,
                shadow_capacity, selected);
    return selected;
  }
  return detail::reservation_dp_table(weights, shadow_weights, capacity,
                                      shadow_capacity, ws);
}

}  // namespace es::core
