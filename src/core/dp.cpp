#include "core/dp.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace es::core {
namespace {

/// Secondary-objective encoding: value = weight * kPriorityBase + (n - i),
/// so any extra grain of utilization dominates, and among equal-utilization
/// sets the one containing earlier (and more) jobs wins.  kPriorityBase must
/// exceed the largest possible secondary sum.
std::int64_t priority_base(std::size_t n) {
  return static_cast<std::int64_t>(n) * static_cast<std::int64_t>(n) + 1;
}

std::int64_t item_value(int weight, std::size_t index, std::size_t n,
                        std::int64_t base) {
  return static_cast<std::int64_t>(weight) * base +
         static_cast<std::int64_t>(n - index);
}

// Bitpacked keep table: one take/skip bit per (item, cell).
void keep_clear(DpWorkspace& ws, std::size_t bits) {
  ws.keep.assign((bits + 63) / 64, 0);
}
inline void keep_set(DpWorkspace& ws, std::size_t bit) {
  ws.keep[bit >> 6] |= std::uint64_t{1} << (bit & 63);
}
inline bool keep_get(const DpWorkspace& ws, std::size_t bit) {
  return (ws.keep[bit >> 6] >> (bit & 63)) & 1;
}

/// Fast path: when every positive-weight item fits together (total demand
/// <= capacity, and total shadow demand <= shadow capacity), "take them
/// all" is the unique optimum — each item adds its full weight of primary
/// value plus a positive tie-break term, so no proper subset can match it.
/// Returns true and fills `selected` (ascending) when it applies.
bool fits_entirely(std::span<const int> weights,
                   std::span<const int> shadow_weights, int capacity,
                   int shadow_capacity, std::vector<int>& selected) {
  std::int64_t total = 0;
  std::int64_t shadow_total = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0) continue;
    total += w;
    if (!shadow_weights.empty()) shadow_total += shadow_weights[i];
  }
  if (total > capacity || shadow_total > shadow_capacity) return false;
  selected.clear();
  for (std::size_t i = 0; i < weights.size(); ++i)
    if (weights[i] > 0) selected.push_back(static_cast<int>(i));
  return true;
}

/// Exact-key cache probe.  `shadow_weights` is empty for basic_dp lookups.
const std::vector<int>* cache_find(const DpWorkspace& ws, bool reservation,
                                   std::span<const int> weights,
                                   std::span<const int> shadow_weights,
                                   int capacity, int shadow_capacity) {
  for (const DpWorkspace::CacheEntry& entry : ws.cache) {
    if (!entry.used || entry.reservation != reservation) continue;
    if (entry.capacity != capacity ||
        entry.shadow_capacity != shadow_capacity)
      continue;
    if (entry.weights.size() != weights.size()) continue;
    if (!std::equal(weights.begin(), weights.end(), entry.weights.begin()))
      continue;
    if (reservation &&
        !std::equal(shadow_weights.begin(), shadow_weights.end(),
                    entry.shadow_weights.begin()))
      continue;
    return &entry.selected;
  }
  return nullptr;
}

void cache_store(DpWorkspace& ws, bool reservation,
                 std::span<const int> weights,
                 std::span<const int> shadow_weights, int capacity,
                 int shadow_capacity, const std::vector<int>& selected) {
  DpWorkspace::CacheEntry& entry = ws.cache[ws.cache_clock];
  ws.cache_clock = (ws.cache_clock + 1) % DpWorkspace::kCacheSlots;
  entry.used = true;
  entry.reservation = reservation;
  entry.capacity = capacity;
  entry.shadow_capacity = shadow_capacity;
  entry.weights.assign(weights.begin(), weights.end());
  entry.shadow_weights.assign(shadow_weights.begin(), shadow_weights.end());
  entry.selected = selected;
}

}  // namespace

namespace detail {

std::vector<int> basic_dp_table(std::span<const int> weights, int capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::int64_t base = priority_base(n);
  const std::size_t cols = static_cast<std::size_t>(capacity) + 1;

  ws.value.assign(cols, 0);
  keep_clear(ws, n * cols);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cols;

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    ES_EXPECTS(w >= 0);
    if (w == 0 || w > capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t c = cols - 1; c >= static_cast<std::size_t>(w); --c) {
      const std::int64_t candidate = ws.value[c - static_cast<std::size_t>(w)] + v;
      if (candidate > ws.value[c]) {
        ws.value[c] = candidate;
        keep_set(ws, i * cols + c);
      }
    }
  }

  std::vector<int> selected;
  std::size_t c = cols - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * cols + c)) {
      selected.push_back(static_cast<int>(i));
      c -= static_cast<std::size_t>(weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

std::vector<int> reservation_dp_table(std::span<const int> weights,
                                      std::span<const int> shadow_weights,
                                      int capacity, int shadow_capacity,
                                      DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  const std::size_t n = weights.size();
  if (n == 0 || capacity == 0) return {};
  const std::int64_t base = priority_base(n);
  const std::size_t c1 = static_cast<std::size_t>(capacity) + 1;
  const std::size_t c2 = static_cast<std::size_t>(shadow_capacity) + 1;
  const std::size_t cells = c1 * c2;

  ws.value.assign(cells, 0);
  keep_clear(ws, n * cells);
  ++ws.counters.table_runs;
  ws.counters.table_cells += n * cells;
  auto cell = [c2](std::size_t a, std::size_t b) { return a * c2 + b; };

  for (std::size_t i = 0; i < n; ++i) {
    const int w = weights[i];
    const int s = shadow_weights[i];
    ES_EXPECTS(w >= 0 && s >= 0);
    ES_EXPECTS(s == 0 || s == w);  // frenum is 0 or the job size
    if (w == 0 || w > capacity || s > shadow_capacity) continue;
    const std::int64_t v = item_value(w, i, n, base);
    for (std::size_t a = c1 - 1; a >= static_cast<std::size_t>(w); --a) {
      for (std::size_t b = c2 - 1; b >= static_cast<std::size_t>(s); --b) {
        const std::int64_t candidate =
            ws.value[cell(a - static_cast<std::size_t>(w),
                          b - static_cast<std::size_t>(s))] +
            v;
        if (candidate > ws.value[cell(a, b)]) {
          ws.value[cell(a, b)] = candidate;
          keep_set(ws, i * cells + cell(a, b));
        }
        if (b == 0) break;  // avoid size_t underflow
      }
      if (a == 0) break;
    }
  }

  std::vector<int> selected;
  std::size_t a = c1 - 1;
  std::size_t b = c2 - 1;
  for (std::size_t i = n; i-- > 0;) {
    if (keep_get(ws, i * cells + cell(a, b))) {
      selected.push_back(static_cast<int>(i));
      a -= static_cast<std::size_t>(weights[i]);
      b -= static_cast<std::size_t>(shadow_weights[i]);
    }
  }
  std::reverse(selected.begin(), selected.end());
  return selected;
}

}  // namespace detail

std::vector<int> basic_dp(std::span<const int> weights, int capacity,
                          DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ++ws.counters.calls;
  if (weights.empty() || capacity == 0) {
    ++ws.counters.fast_path;  // trivially empty: no table, no cache
    return {};
  }

  std::vector<int> selected;
  if (fits_entirely(weights, {}, capacity, 0, selected)) {
    ++ws.counters.fast_path;
    return selected;
  }
  if (ws.cache_enabled) {
    if (const std::vector<int>* hit =
            cache_find(ws, false, weights, {}, capacity, 0)) {
      ++ws.counters.cache_hits;
      return *hit;
    }
  }
  selected = detail::basic_dp_table(weights, capacity, ws);
  if (ws.cache_enabled)
    cache_store(ws, false, weights, {}, capacity, 0, selected);
  return selected;
}

std::vector<int> reservation_dp(std::span<const int> weights,
                                std::span<const int> shadow_weights,
                                int capacity, int shadow_capacity,
                                DpWorkspace& ws) {
  ES_EXPECTS(capacity >= 0);
  ES_EXPECTS(shadow_capacity >= 0);
  ES_EXPECTS(weights.size() == shadow_weights.size());
  ++ws.counters.calls;
  if (weights.empty() || capacity == 0) {
    ++ws.counters.fast_path;  // trivially empty: no table, no cache
    return {};
  }

  std::vector<int> selected;
  if (fits_entirely(weights, shadow_weights, capacity, shadow_capacity,
                    selected)) {
    ++ws.counters.fast_path;
    return selected;
  }
  if (ws.cache_enabled) {
    if (const std::vector<int>* hit = cache_find(
            ws, true, weights, shadow_weights, capacity, shadow_capacity)) {
      ++ws.counters.cache_hits;
      return *hit;
    }
  }
  selected = detail::reservation_dp_table(weights, shadow_weights, capacity,
                                          shadow_capacity, ws);
  if (ws.cache_enabled)
    cache_store(ws, true, weights, shadow_weights, capacity, shadow_capacity,
                selected);
  return selected;
}

}  // namespace es::core
