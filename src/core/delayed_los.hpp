// Delayed-LOS (paper Algorithm 1) — the paper's first contribution.
//
// LOS starts the queue-head job the moment it fits, which the paper shows is
// too aggressive: in the Fig-2 example (free = 10; queue = 7, 4, 6) starting
// the size-7 head yields utilization 7, while skipping it in favour of {4,6}
// fills the machine.  Delayed-LOS lets Basic_DP pick the
// utilization-maximizing set and only *bounds* the head's patience: once the
// head has been skipped C_s scheduling cycles, it is started right away if
// it fits, or receives the LOS reservation (shadow time / Reservation_DP)
// if it does not.
#pragma once

#include <vector>

#include "core/dp.hpp"
#include "core/dp_speculator.hpp"
#include "core/los.hpp"
#include "sched/scheduler.hpp"

namespace es::core {

class DelayedLos : public sched::Scheduler {
 public:
  /// `max_skip_count` is the paper's C_s; the evaluation finds 7-8 optimal
  /// at P_S = 0.5 and insensitivity beyond ~3 at P_S = 0.8.
  explicit DelayedLos(int max_skip_count = 7, int lookahead = 50)
      : max_skip_count_(max_skip_count), lookahead_(lookahead) {}

  std::string name() const override { return "Delayed-LOS"; }
  void cycle(sched::SchedulerContext& ctx) override;

  int max_skip_count() const { return max_skip_count_; }
  int lookahead() const { return lookahead_; }

  /// One pass of the Algorithm-1 body.  Returns true when it started at
  /// least one job (progress).  Shared with Hybrid-LOS, whose Algorithm 2
  /// delegates here when the dedicated queue is empty.
  /// `allow_skip_increment` is true only on the first pass of an event's
  /// cycle so scount counts scheduling cycles (events), not fixpoint
  /// iterations.
  static bool step(sched::SchedulerContext& ctx, int max_skip_count,
                   int lookahead, DpWorkspace& ws, bool allow_skip_increment);

  sched::DpCounters dp_counters() const override { return ws_.counters; }
  void set_dp_cache(bool enabled) override { ws_.cache_enabled = enabled; }
  void set_dp_cache_slots(std::size_t slots) override {
    ws_.set_cache_slots(slots);
  }

  /// Predicts the next cycle's Basic_DP instance — capacity after the next
  /// finisher returns its allocation — and fills it off-thread.
  void speculate(const sched::SchedulerContext& ctx) override {
    speculate_next(ctx, max_skip_count_, lookahead_, ws_, speculator_,
                   spec_weights_);
  }
  void settle_speculation() override { speculator_.settle(ws_); }
  void finish_speculation() override { speculator_.drain(ws_); }

  /// The prediction body behind speculate(), shared with Hybrid-LOS the
  /// same way step() is: replicate step()'s Basic_DP eligibility scan
  /// against the capacity the next completion will expose, and launch an
  /// off-thread fill for it.  Wrong predictions warm a cache entry that
  /// never hits; they cannot change a decision.
  static void speculate_next(const sched::SchedulerContext& ctx,
                             int max_skip_count, int lookahead,
                             DpWorkspace& ws, DpSpeculator& speculator,
                             std::vector<int>& spec_weights);

 private:
  int max_skip_count_;
  int lookahead_;
  DpWorkspace ws_;
  DpSpeculator speculator_;
  std::vector<int> spec_weights_;  ///< reused per speculate() call
};

}  // namespace es::core
