// Cross-algorithm invariant oracle.
//
// The oracle watches one run from the engine's attachment bus and checks a
// second, independent set of invariants on the finished result — the
// properties every scheduling policy must satisfy on every workload,
// however hostile.  Unlike the engine's ES_EXPECTS/paranoid checks (which
// abort the process), oracle violations are *collected as data*, so the
// atlas can keep fuzzing, shrink the scenario, and write a repro file.
//
// Per-run invariants (see docs/architecture.md "Engine invariants"):
//   * capacity: at every hook instant, allocated processors never exceed
//     the in-service capacity (machine minus offline), and never go
//     negative; offline capacity is fully restored by the end of a
//     completed run;
//   * accounting: every workload job appears in the outcomes exactly once
//     (finished, killed or abandoned); completed+killed+abandoned matches;
//     no job is left unfinished by a completed run;
//   * per-job sanity: finish >= start >= 0, non-negative waits, allocation
//     within [1, machine], every field finite;
//   * conservation: goodput + wasted + saved proc-seconds equal the
//     delivered proc-seconds the oracle integrates independently from the
//     start/preempt/finish hook stream;
//   * ECC audit: with an ECC-processing algorithm every command in the
//     workload is dispatched exactly once (applied, rejected or
//     unknown-job); without one, none are;
//   * liveness: a scenario expected to complete must terminate without
//     tripping a watchdog budget, and the machine must not sit idle with
//     runnable batch work across many consecutive scheduling cycles;
//   * crash restart (crash_restart family only): killing the run at an
//     event boundary and resuming from the engine's own snapshot must
//     reproduce the uninterrupted result bit for bit.
//
// Cross-algorithm sanity (check_cross): every algorithm saw the same job
// set with the same arrival horizon and offered load; algorithms that
// neither process ECCs nor face failures deliver identical killed counts
// and goodput (the workload alone determines them).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "fuzz/scenario.hpp"
#include "sched/attach/observer.hpp"
#include "sched/metrics.hpp"

namespace es::fuzz {

/// One invariant violation: the check's stable identifier plus a
/// human-readable detail line (also what the shrinker matches on).
struct Violation {
  std::string check;   ///< e.g. "capacity-overflow", "conservation"
  std::string detail;
};

/// Engine-bus half of the oracle: integrates delivered work and tracks
/// live allocation against in-service capacity while the run executes.
/// One instance observes exactly one run.
class OracleObserver final : public sched::EngineObserver {
 public:
  static constexpr sched::HookMask kHookMask =
      sched::hook_bit(sched::Hook::kCycleEnd) |
      sched::hook_bit(sched::Hook::kStart) |
      sched::hook_bit(sched::Hook::kFinish) |
      sched::hook_bit(sched::Hook::kEccApplied) |
      sched::hook_bit(sched::Hook::kEccUnknownJob) |
      sched::hook_bit(sched::Hook::kNodeDown) |
      sched::hook_bit(sched::Hook::kNodeUp) |
      sched::hook_bit(sched::Hook::kPreempt);

  OracleObserver(int machine_procs, int granularity);

  void on_cycle_end(const sched::CycleInfo& info) override;
  void on_start(sim::Time now, const sched::JobRun& job,
                bool backfilled) override;
  void on_finish(sim::Time now, const sched::JobRun& job) override;
  void on_ecc_applied(sim::Time now, const sched::JobRun& job,
                      const workload::Ecc& ecc,
                      sched::EccOutcome outcome) override;
  void on_ecc_unknown_job(sim::Time now, const workload::Ecc& ecc) override;
  void on_node_down(sim::Time now, int procs) override;
  void on_node_up(sim::Time now, int procs) override;
  void on_preempt(sim::Time now, sched::PreemptInfo& info) override;

  const std::vector<Violation>& violations() const { return violations_; }

  // Final-state accessors for the post-run checks.
  int busy() const { return busy_; }
  int offline() const { return offline_; }
  double delivered_preempt() const { return delivered_preempt_; }
  std::uint64_t ecc_events() const { return ecc_events_; }
  std::uint64_t starts() const { return starts_; }
  std::uint64_t max_consecutive_idle_cycles() const {
    return max_idle_streak_;
  }

 private:
  void violation(const char* check, std::string detail);
  void check_capacity(sim::Time now);

  int machine_procs_;
  int granularity_;
  int busy_ = 0;
  int offline_ = 0;
  double delivered_preempt_ = 0;  ///< alloc x elapsed of requeued attempts
  std::uint64_t ecc_events_ = 0;
  std::uint64_t starts_ = 0;
  std::uint64_t idle_streak_ = 0;
  std::uint64_t max_idle_streak_ = 0;
  std::unordered_map<workload::JobId, int> running_alloc_;
  std::vector<Violation> violations_;
};

/// One algorithm's verdict on a scenario.
struct RunReport {
  std::string algorithm;
  bool ran = false;  ///< false when the policy cannot run this workload
                     ///< (dedicated jobs without supports_dedicated)
  sched::SimulationResult result;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs `scenario` under `algorithm` with the oracle attached and applies
/// every per-run check.  Returns ran=false (no violations) when the policy
/// does not support the workload's job mix.  The engine's own contracts
/// still abort the process on corruption — callers that need crash triage
/// must persist the scenario to disk first.
RunReport check_run(const Scenario& scenario, const std::string& algorithm);

/// Cross-algorithm sanity over the reports of one scenario (reports with
/// ran=false are skipped).
std::vector<Violation> check_cross(const Scenario& scenario,
                                   const std::vector<RunReport>& reports);

/// True when the named algorithm can run this scenario's job mix.
bool algorithm_supports(const Scenario& scenario, const std::string& algorithm);

}  // namespace es::fuzz
