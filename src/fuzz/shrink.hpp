// Delta-debugging scenario minimizer.
//
// Given a scenario on which some predicate holds (an oracle violation, a
// cross-algorithm mismatch), shrink() searches for a smaller scenario on
// which it still holds: ddmin-style chunk removal over the job list (each
// job taking its ECCs with it), then over the surviving ECCs, then over
// scripted outages.  The result is what gets written as a minimized,
// replayable repro file.
//
// The predicate runs real simulations, so shrinking an engine *crash*
// (ES_EXPECTS aborts the process) cannot happen in-process; the atlas
// handles crashes by persisting the unshrunk scenario before each run and
// shrinks only violations it can observe as data.
#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/scenario.hpp"

namespace es::fuzz {

/// Returns true when the scenario still exhibits the failure being chased.
using FailurePredicate = std::function<bool(const Scenario&)>;

struct ShrinkResult {
  Scenario scenario;        ///< smallest failing scenario found
  std::size_t tests = 0;    ///< predicate evaluations spent
  std::size_t removed = 0;  ///< events removed from the original
};

/// Minimizes `scenario` under `still_fails`.  The input scenario must
/// satisfy the predicate; the returned one does too.  `budget` caps the
/// number of predicate evaluations (each one typically runs a full
/// simulation per algorithm under test).
ShrinkResult shrink(const Scenario& scenario, const FailurePredicate& still_fails,
                    std::size_t budget = 400);

}  // namespace es::fuzz
