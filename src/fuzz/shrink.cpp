#include "fuzz/shrink.hpp"

#include <set>
#include <vector>

namespace es::fuzz {

namespace {

/// Rebuilds the scenario with only the index-selected jobs, dropping the
/// ECCs of removed jobs with them.
Scenario keep_jobs(const Scenario& scenario, const std::vector<std::size_t>& kept) {
  Scenario out = scenario;
  out.workload.jobs.clear();
  std::set<workload::JobId> ids;
  for (const std::size_t index : kept) {
    out.workload.jobs.push_back(scenario.workload.jobs[index]);
    ids.insert(scenario.workload.jobs[index].id);
  }
  out.workload.eccs.clear();
  for (const workload::Ecc& ecc : scenario.workload.eccs)
    if (ids.count(ecc.job_id)) out.workload.eccs.push_back(ecc);
  out.workload.normalize();
  return out;
}

Scenario keep_eccs(const Scenario& scenario, const std::vector<std::size_t>& kept) {
  Scenario out = scenario;
  out.workload.eccs.clear();
  for (const std::size_t index : kept)
    out.workload.eccs.push_back(scenario.workload.eccs[index]);
  out.workload.normalize();
  return out;
}

Scenario keep_outages(const Scenario& scenario,
                      const std::vector<std::size_t>& kept) {
  Scenario out = scenario;
  out.engine.failure.script.clear();
  for (const std::size_t index : kept)
    out.engine.failure.script.push_back(scenario.engine.failure.script[index]);
  // An emptied script must not fall back to the stochastic regime: a
  // scripted scenario without outages is simply failure-free.
  if (out.engine.failure.script.empty() &&
      !scenario.engine.failure.script.empty())
    out.engine.failure.enabled = false;
  return out;
}

/// ddmin-style chunk removal over `count` items.  `build` materializes the
/// scenario for a kept-index subset; returns the smallest kept set on which
/// the predicate still fails.
std::vector<std::size_t> ddmin(
    std::size_t count, const FailurePredicate& still_fails,
    const std::function<Scenario(const std::vector<std::size_t>&)>& build,
    std::size_t budget, std::size_t& tests) {
  std::vector<std::size_t> kept(count);
  for (std::size_t i = 0; i < count; ++i) kept[i] = i;

  std::size_t chunk = (count + 1) / 2;
  while (!kept.empty() && chunk >= 1) {
    bool reduced = false;
    for (std::size_t start = 0; start < kept.size();) {
      if (tests >= budget) return kept;
      std::vector<std::size_t> candidate;
      candidate.reserve(kept.size());
      for (std::size_t i = 0; i < kept.size(); ++i)
        if (i < start || i >= start + chunk) candidate.push_back(kept[i]);
      ++tests;
      if (still_fails(build(candidate))) {
        kept = std::move(candidate);
        reduced = true;
        // The window now holds the next items; retry the same start.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1) {
      if (!reduced) break;  // a full singleton pass removed nothing more
    } else {
      chunk = (chunk + 1) / 2;
    }
  }
  return kept;
}

}  // namespace

ShrinkResult shrink(const Scenario& scenario,
                    const FailurePredicate& still_fails, std::size_t budget) {
  ShrinkResult result;
  result.scenario = scenario;
  const std::size_t original = scenario.event_weight();

  // Jobs first (each removal also drops its ECCs — the biggest lever),
  // then the surviving ECCs, then scripted outages.
  {
    const Scenario& base = result.scenario;
    const std::vector<std::size_t> kept = ddmin(
        base.workload.jobs.size(), still_fails,
        [&base](const std::vector<std::size_t>& indices) {
          return keep_jobs(base, indices);
        },
        budget, result.tests);
    result.scenario = keep_jobs(base, kept);
  }
  {
    const Scenario base = result.scenario;
    const std::vector<std::size_t> kept = ddmin(
        base.workload.eccs.size(), still_fails,
        [&base](const std::vector<std::size_t>& indices) {
          return keep_eccs(base, indices);
        },
        budget, result.tests);
    result.scenario = keep_eccs(base, kept);
  }
  {
    const Scenario base = result.scenario;
    const std::vector<std::size_t> kept = ddmin(
        base.engine.failure.script.size(), still_fails,
        [&base](const std::vector<std::size_t>& indices) {
          return keep_outages(base, indices);
        },
        budget, result.tests);
    result.scenario = keep_outages(base, kept);
  }

  result.scenario.name = scenario.name + "-min";
  result.removed = original - result.scenario.event_weight();
  return result;
}

}  // namespace es::fuzz
