// Property-based hostile-scenario families.
//
// Each family is a deterministic map (seed -> Scenario) that targets one
// engine stress axis the hand-written test suites cannot cover
// systematically:
//
//   flash_crowd           arrival bursts: whole cohorts (including
//                         full-machine jobs) submitted within seconds,
//                         stressing queue ordering and backfill churn
//   heavy_tail            extreme runtime mixes and wildly wrong user
//                         estimates (f-model spreads, killed jobs),
//                         stressing kill-by accounting and DP lookahead
//   ecc_storm             dense ECC traffic with contradictory and
//                         duplicate same-instant commands per job, plus
//                         occasional extreme amounts — the EccProcessor
//                         conflict shield's reason to exist
//   outage_cascade        correlated multi-node outages (scripted cascades
//                         or harsh stochastic MTBF/MTTR) under every
//                         requeue policy and finite retry budgets
//   dedicated_saturation  reservation-heavy traces with short booking
//                         horizons, saturating the dedicated queue (only
//                         dedicated-aware policies run it)
//   checkpoint_churn      checkpoint/restart under failure churn: short
//                         intervals, non-trivial overhead, preemptions
//                         racing periodic checkpoints
//   crash_restart         the full feature surface in one trace (ECCs,
//                         dedicated jobs, failures, checkpoints); the
//                         oracle kills each run at event boundaries,
//                         resumes from the last engine snapshot and
//                         requires the resumed result to match the
//                         uninterrupted run exactly
//
// All times are quantized to whole seconds so a scenario serializes through
// the CWF layer (`%.0f`) bit-identically: the in-memory scenario the fuzzer
// ran IS the file the corpus commits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace es::fuzz {

/// The hostile family names, in the atlas's canonical order.
const std::vector<std::string>& family_names();

/// Builds the scenario `family`/`seed`.  Deterministic: the same pair
/// yields a bit-identical scenario on every build.  Throws ScenarioError
/// for unknown family names.
Scenario make_scenario(const std::string& family, std::uint64_t seed);

}  // namespace es::fuzz
