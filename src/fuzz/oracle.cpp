#include "fuzz/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <set>

#include "core/factory.hpp"
#include "exp/experiment.hpp"
#include "sched/engine.hpp"
#include "snap/snapshot.hpp"

namespace es::fuzz {

namespace {

constexpr std::size_t kMaxViolations = 64;

/// Consecutive cycle-ends with an empty machine, full capacity and waiting
/// batch work before the oracle calls the queue stuck.  A single idle
/// cycle-end can only mean the policy declined to start the head job on an
/// empty machine — already wrong — but the generous threshold keeps the
/// check robust against future policies with deliberate one-cycle delays.
constexpr std::uint64_t kIdleStreakLimit = 10;

std::string fmt(const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return buffer;
}

/// Exact equivalence of every deterministic result field.  Returns an
/// empty string when the results match, else a description of the first
/// difference.  Doubles are compared bit-for-bit (==): a resumed run is
/// supposed to replay the identical floating-point operation sequence.
std::string diff_results(const sched::SimulationResult& a,
                         const sched::SimulationResult& b) {
  if (a.completed != b.completed || a.killed != b.killed ||
      a.abandoned != b.abandoned || a.unfinished != b.unfinished)
    return fmt("outcome counts differ (completed %llu/%llu killed %llu/%llu)",
               static_cast<unsigned long long>(a.completed),
               static_cast<unsigned long long>(b.completed),
               static_cast<unsigned long long>(a.killed),
               static_cast<unsigned long long>(b.killed));
  if (a.cycles != b.cycles || a.events != b.events)
    return fmt("cycles/events differ (%llu/%llu vs %llu/%llu)",
               static_cast<unsigned long long>(a.cycles),
               static_cast<unsigned long long>(a.events),
               static_cast<unsigned long long>(b.cycles),
               static_cast<unsigned long long>(b.events));
  if (a.utilization != b.utilization || a.mean_wait != b.mean_wait ||
      a.slowdown != b.slowdown || a.makespan != b.makespan ||
      a.first_arrival != b.first_arrival || a.last_finish != b.last_finish)
    return fmt("headline metrics differ (util %.17g vs %.17g, wait %.17g "
               "vs %.17g)",
               a.utilization, b.utilization, a.mean_wait, b.mean_wait);
  if (a.ecc.processed != b.ecc.processed ||
      a.ecc.conflicts != b.ecc.conflicts)
    return fmt("ECC ledger differs (processed %llu vs %llu)",
               static_cast<unsigned long long>(a.ecc.processed),
               static_cast<unsigned long long>(b.ecc.processed));
  if (a.failure.outages != b.failure.outages ||
      a.failure.interruptions != b.failure.interruptions ||
      a.failure.requeues != b.failure.requeues ||
      a.failure.abandoned != b.failure.abandoned ||
      a.failure.checkpoints != b.failure.checkpoints ||
      a.failure.lost_proc_seconds != b.failure.lost_proc_seconds ||
      a.failure.wasted_proc_seconds != b.failure.wasted_proc_seconds ||
      a.failure.saved_proc_seconds != b.failure.saved_proc_seconds ||
      a.failure.goodput_proc_seconds != b.failure.goodput_proc_seconds)
    return fmt("failure ledger differs (outages %llu vs %llu, requeues "
               "%llu vs %llu)",
               static_cast<unsigned long long>(a.failure.outages),
               static_cast<unsigned long long>(b.failure.outages),
               static_cast<unsigned long long>(a.failure.requeues),
               static_cast<unsigned long long>(b.failure.requeues));
  if (a.jobs.size() != b.jobs.size())
    return fmt("outcome rows differ (%zu vs %zu)", a.jobs.size(),
               b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    const sched::JobOutcome& x = a.jobs[i];
    const sched::JobOutcome& y = b.jobs[i];
    if (x.id != y.id || x.killed != y.killed || x.abandoned != y.abandoned ||
        x.interruptions != y.interruptions || x.procs != y.procs ||
        x.arrival != y.arrival || x.started != y.started ||
        x.finished != y.finished || x.wait != y.wait || x.run != y.run)
      return fmt("job %lld outcome differs (started %.17g vs %.17g, "
                 "finished %.17g vs %.17g)",
                 static_cast<long long>(x.id), x.started, y.started,
                 x.finished, y.finished);
  }
  return std::string();
}

}  // namespace

OracleObserver::OracleObserver(int machine_procs, int granularity)
    : machine_procs_(machine_procs), granularity_(granularity) {}

void OracleObserver::violation(const char* check, std::string detail) {
  if (violations_.size() < kMaxViolations) {
    violations_.push_back({check, std::move(detail)});
  } else if (violations_.size() == kMaxViolations) {
    violations_.push_back({"too-many-violations", "further checks elided"});
  }
}

void OracleObserver::check_capacity(sim::Time now) {
  const int in_service = machine_procs_ - offline_;
  if (busy_ > in_service)
    violation("capacity-overflow",
              fmt("t=%.3f busy=%d exceeds in-service capacity %d "
                  "(machine=%d offline=%d)",
                  now, busy_, in_service, machine_procs_, offline_));
  if (busy_ < 0)
    violation("capacity-negative", fmt("t=%.3f busy=%d", now, busy_));
}

void OracleObserver::on_cycle_end(const sched::CycleInfo& info) {
  if (info.batch_depth > 0 && info.active_jobs == 0 && offline_ == 0) {
    ++idle_streak_;
    max_idle_streak_ = std::max(max_idle_streak_, idle_streak_);
  } else {
    idle_streak_ = 0;
  }
}

void OracleObserver::on_start(sim::Time now, const sched::JobRun& job,
                              bool backfilled) {
  (void)backfilled;
  ++starts_;
  const auto [it, inserted] = running_alloc_.emplace(job.id, job.alloc);
  (void)it;
  if (!inserted) {
    violation("double-start",
              fmt("t=%.3f job %lld started while already running", now,
                  static_cast<long long>(job.id)));
    return;
  }
  if (job.alloc < job.num || job.alloc % granularity_ != 0)
    violation("bad-allocation",
              fmt("t=%.3f job %lld alloc=%d for num=%d granularity=%d", now,
                  static_cast<long long>(job.id), job.alloc, job.num,
                  granularity_));
  busy_ += job.alloc;
  check_capacity(now);
  idle_streak_ = 0;
}

void OracleObserver::on_finish(sim::Time now, const sched::JobRun& job) {
  const auto it = running_alloc_.find(job.id);
  if (it == running_alloc_.end()) {
    violation("finish-without-start",
              fmt("t=%.3f job %lld", now,
                  static_cast<long long>(job.id)));
    return;
  }
  busy_ -= it->second;
  running_alloc_.erase(it);
  check_capacity(now);
  idle_streak_ = 0;
}

void OracleObserver::on_ecc_applied(sim::Time now, const sched::JobRun& job,
                                    const workload::Ecc& ecc,
                                    sched::EccOutcome outcome) {
  (void)ecc;
  ++ecc_events_;
  if (outcome != sched::EccOutcome::kResizedRunning) return;
  const auto it = running_alloc_.find(job.id);
  if (it == running_alloc_.end()) {
    violation("resize-not-running",
              fmt("t=%.3f job %lld resized while not tracked running", now,
                  static_cast<long long>(job.id)));
    return;
  }
  busy_ += job.alloc - it->second;
  it->second = job.alloc;
  check_capacity(now);
}

void OracleObserver::on_ecc_unknown_job(sim::Time now,
                                        const workload::Ecc& ecc) {
  (void)now;
  (void)ecc;
  ++ecc_events_;
}

void OracleObserver::on_node_down(sim::Time now, int procs) {
  offline_ += procs;
  check_capacity(now);
  idle_streak_ = 0;
}

void OracleObserver::on_node_up(sim::Time now, int procs) {
  offline_ -= procs;
  if (offline_ < 0)
    violation("offline-negative",
              fmt("t=%.3f offline=%d after +%d", now, offline_, procs));
  idle_streak_ = 0;
}

void OracleObserver::on_preempt(sim::Time now, sched::PreemptInfo& info) {
  const workload::JobId id = info.job->id;
  const auto it = running_alloc_.find(id);
  if (it == running_alloc_.end()) {
    violation("preempt-without-start",
              fmt("t=%.3f job %lld", now, static_cast<long long>(id)));
    return;
  }
  if (it->second != info.job->alloc)
    violation("alloc-mismatch",
              fmt("t=%.3f job %lld tracked alloc=%d engine alloc=%d", now,
                  static_cast<long long>(id), it->second, info.job->alloc));
  if (info.elapsed < 0)
    violation("negative-elapsed",
              fmt("t=%.3f job %lld elapsed=%.3f", now,
                  static_cast<long long>(id), info.elapsed));
  busy_ -= it->second;
  running_alloc_.erase(it);
  check_capacity(now);
  // A requeued attempt's work is delivered here and never shows up in the
  // job's final outcome row; an abandoned attempt IS the final outcome row
  // (collect() keeps its start/end), so count it there only.
  if (info.policy != fault::RequeuePolicy::kAbandon)
    delivered_preempt_ +=
        static_cast<double>(info.job->alloc) * info.elapsed;
  idle_streak_ = 0;
}

bool algorithm_supports(const Scenario& scenario,
                        const std::string& algorithm) {
  if (scenario.workload.dedicated_count() == 0) return true;
  const core::Algorithm algo = core::make_algorithm(algorithm);
  return algo.policy->supports_dedicated();
}

RunReport check_run(const Scenario& scenario, const std::string& algorithm) {
  RunReport report;
  report.algorithm = algorithm;
  if (!algorithm_supports(scenario, algorithm)) return report;

  OracleObserver oracle(scenario.workload.machine_procs,
                        scenario.workload.granularity);
  report.result = exp::run_workload(scenario.workload, algorithm,
                                    scenario.options(), &oracle,
                                    OracleObserver::kHookMask);
  report.ran = true;
  report.violations = oracle.violations();
  const sched::SimulationResult& result = report.result;
  auto violation = [&report](const char* check, std::string detail) {
    report.violations.push_back({check, std::move(detail)});
  };

  const bool completed =
      result.termination == sim::TerminationReason::kCompleted;
  if (scenario.expect_completion && !completed)
    violation("watchdog-abort",
              std::string("run aborted: ") + sim::to_string(result.termination));
  if (oracle.max_consecutive_idle_cycles() > kIdleStreakLimit)
    violation("stuck-queue",
              fmt("machine idle with waiting batch work across %llu "
                  "consecutive cycles",
                  static_cast<unsigned long long>(
                      oracle.max_consecutive_idle_cycles())));

  // Metric sanity holds even for partial (aborted) runs.
  if (!std::isfinite(result.utilization) || result.utilization < 0 ||
      result.utilization > 1.0 + 1e-9)
    violation("utilization-range",
              fmt("utilization=%.9f", result.utilization));
  for (const double metric :
       {result.mean_wait, result.slowdown, result.mean_run, result.max_wait,
        result.makespan, result.mean_dedicated_delay})
    if (!std::isfinite(metric))
      violation("metric-not-finite", fmt("value=%f", metric));
  if (result.last_finish < result.first_arrival)
    violation("time-order", fmt("last_finish=%.3f < first_arrival=%.3f",
                                result.last_finish, result.first_arrival));

  if (!completed) return report;  // the structural checks need a full run

  if (result.unfinished != 0)
    violation("unfinished-jobs",
              fmt("%llu jobs unfinished in a completed run",
                  static_cast<unsigned long long>(result.unfinished)));
  if (oracle.busy() != 0)
    violation("capacity-leak",
              fmt("%d processors still allocated at end of run",
                  oracle.busy()));
  if (oracle.offline() != 0)
    violation("outage-leak",
              fmt("%d processors still offline at end of run",
                  oracle.offline()));

  // Every workload job finished/abandoned exactly once.
  std::set<workload::JobId> expected;
  for (const workload::Job& job : scenario.workload.jobs)
    expected.insert(job.id);
  std::set<workload::JobId> seen;
  for (const sched::JobOutcome& outcome : result.jobs) {
    if (!seen.insert(outcome.id).second)
      violation("duplicate-outcome",
                fmt("job %lld appears twice in the outcomes",
                    static_cast<long long>(outcome.id)));
    if (expected.count(outcome.id) == 0)
      violation("phantom-outcome",
                fmt("job %lld finished but was never submitted",
                    static_cast<long long>(outcome.id)));
  }
  for (const workload::JobId id : expected)
    if (seen.count(id) == 0)
      violation("lost-job", fmt("job %lld never finished nor abandoned",
                                static_cast<long long>(id)));
  if (result.completed + result.killed + result.abandoned !=
      scenario.workload.jobs.size())
    violation("outcome-count",
              fmt("completed=%llu killed=%llu abandoned=%llu != %zu jobs",
                  static_cast<unsigned long long>(result.completed),
                  static_cast<unsigned long long>(result.killed),
                  static_cast<unsigned long long>(result.abandoned),
                  scenario.workload.jobs.size()));

  double outcome_work = 0;
  for (const sched::JobOutcome& outcome : result.jobs) {
    const long long id = outcome.id;
    if (!std::isfinite(outcome.started) || !std::isfinite(outcome.finished) ||
        !std::isfinite(outcome.wait) || !std::isfinite(outcome.run))
      violation("outcome-not-finite", fmt("job %lld", id));
    if (outcome.finished < outcome.started)
      violation("negative-run", fmt("job %lld finished=%.3f < started=%.3f",
                                    id, outcome.finished, outcome.started));
    if (outcome.wait < 0)
      violation("negative-wait",
                fmt("job %lld wait=%.3f", id, outcome.wait));
    if (outcome.procs < 1 || outcome.procs > scenario.workload.machine_procs)
      violation("outcome-procs",
                fmt("job %lld procs=%d outside [1, %d]", id, outcome.procs,
                    scenario.workload.machine_procs));
    if (outcome.killed && outcome.abandoned)
      violation("conflicting-status",
                fmt("job %lld both killed and abandoned", id));
    outcome_work += static_cast<double>(outcome.procs) * outcome.run;
  }

  // Conservation of work: what the machine delivered (requeued attempts +
  // final attempts) must equal what the ledgers account for (goodput +
  // wasted + checkpoint-saved).
  const double delivered = oracle.delivered_preempt() + outcome_work;
  const double accounted = result.failure.goodput_proc_seconds +
                           result.failure.wasted_proc_seconds +
                           result.failure.saved_proc_seconds;
  if (std::abs(delivered - accounted) > 1e-6 * std::max(1.0, delivered))
    violation("conservation",
              fmt("delivered=%.6f but goodput+wasted+saved=%.6f "
                  "(goodput=%.6f wasted=%.6f saved=%.6f preempt=%.6f)",
                  delivered, accounted, result.failure.goodput_proc_seconds,
                  result.failure.wasted_proc_seconds,
                  result.failure.saved_proc_seconds,
                  oracle.delivered_preempt()));

  // ECC audit: with a processing algorithm every workload command is
  // dispatched exactly once; without one, none are.
  const core::Algorithm algo = core::make_algorithm(algorithm);
  const std::uint64_t expected_eccs =
      algo.process_eccs ? scenario.workload.eccs.size() : 0;
  if (oracle.ecc_events() != expected_eccs)
    violation("ecc-dispatch",
              fmt("%llu ECC events dispatched, expected %llu",
                  static_cast<unsigned long long>(oracle.ecc_events()),
                  static_cast<unsigned long long>(expected_eccs)));
  if (!algo.process_eccs && result.ecc.processed != 0)
    violation("ecc-dispatch",
              fmt("non-ECC algorithm processed %llu commands",
                  static_cast<unsigned long long>(result.ecc.processed)));

  // Restore-equivalence differential (crash_restart family only): re-run
  // with snapshot-every-cycle capture, kill at two event boundaries, resume
  // from the last pre-kill snapshot, and require every deterministic result
  // field to match the uninterrupted run bit for bit.
  if (scenario.family == "crash_restart") {
    for (const std::uint64_t kill :
         {result.events / 3 + 1, (2 * result.events) / 3 + 1}) {
      core::AlgorithmOptions killed_options = scenario.options();
      killed_options.engine.snapshot.every_cycles = 1;
      killed_options.engine.watchdog.max_events = kill;
      std::string image;
      (void)exp::run_workload_prepared(
          scenario.workload, algorithm, killed_options,
          [&image](sched::Engine& engine) {
            engine.set_snapshot_sink(
                [&image](const std::string& bytes) { image = bytes; });
          });
      sched::SimulationResult resumed;
      if (image.empty()) {
        // Killed before the first snapshot; recovery is a fresh run.
        resumed =
            exp::run_workload(scenario.workload, algorithm, scenario.options());
      } else {
        try {
          snap::SnapshotReader reader(image);
          resumed = exp::resume_workload(scenario.workload, algorithm,
                                         scenario.options(), reader);
        } catch (const snap::SnapshotError& error) {
          violation("crash-restart-reject",
                    fmt("own snapshot at %llu events rejected on resume: %s",
                        static_cast<unsigned long long>(kill), error.what()));
          continue;
        }
      }
      const std::string diff = diff_results(result, resumed);
      if (!diff.empty())
        violation("crash-restart-divergence",
                  fmt("kill at %llu events: %s",
                      static_cast<unsigned long long>(kill), diff.c_str()));
    }
  }
  return report;
}

std::vector<Violation> check_cross(const Scenario& scenario,
                                   const std::vector<RunReport>& reports) {
  std::vector<Violation> violations;
  std::vector<const RunReport*> ran;
  for (const RunReport& report : reports)
    if (report.ran &&
        report.result.termination == sim::TerminationReason::kCompleted)
      ran.push_back(&report);
  if (ran.size() < 2) return violations;

  const RunReport& base = *ran.front();
  auto ids_of = [](const RunReport& report) {
    std::vector<workload::JobId> ids;
    ids.reserve(report.result.jobs.size());
    for (const sched::JobOutcome& outcome : report.result.jobs)
      ids.push_back(outcome.id);
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  const std::vector<workload::JobId> base_ids = ids_of(base);
  for (std::size_t i = 1; i < ran.size(); ++i) {
    const RunReport& other = *ran[i];
    if (ids_of(other) != base_ids)
      violations.push_back(
          {"cross-job-set",
           base.algorithm + " and " + other.algorithm +
               " finished different job sets"});
    if (other.result.first_arrival != base.result.first_arrival)
      violations.push_back(
          {"cross-horizon",
           base.algorithm + " and " + other.algorithm +
               " disagree on the arrival horizon"});
    if (other.result.offered_load != base.result.offered_load)
      violations.push_back(
          {"cross-offered-load",
           base.algorithm + " and " + other.algorithm +
               " disagree on the offered load"});
  }

  // Without ECC processing and without failures, which jobs are killed and
  // how much work each delivers is a property of the workload alone: every
  // job runs min(actual, estimate) on the same grain-rounded allocation
  // under every policy.  Only the summation order may differ.
  if (!scenario.engine.failure.enabled) {
    const RunReport* plain_base = nullptr;
    for (const RunReport* report : ran) {
      if (core::make_algorithm(report->algorithm).process_eccs) continue;
      if (plain_base == nullptr) {
        plain_base = report;
        continue;
      }
      if (report->result.killed != plain_base->result.killed)
        violations.push_back(
            {"cross-killed",
             plain_base->algorithm + " killed " +
                 std::to_string(plain_base->result.killed) + " jobs but " +
                 report->algorithm + " killed " +
                 std::to_string(report->result.killed)});
      const double a = plain_base->result.failure.goodput_proc_seconds;
      const double b = report->result.failure.goodput_proc_seconds;
      if (std::abs(a - b) > 1e-9 * std::max(1.0, std::max(a, b)))
        violations.push_back(
            {"cross-goodput", plain_base->algorithm + " delivered " +
                                  std::to_string(a) + " proc-seconds but " +
                                  report->algorithm + " delivered " +
                                  std::to_string(b)});
    }
  }
  return violations;
}

}  // namespace es::fuzz
