#include "fuzz/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_file.hpp"
#include "util/check.hpp"
#include "workload/cwf.hpp"

namespace es::fuzz {

namespace {

constexpr int kScenarioVersion = 1;

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw ScenarioError("scenario line " + std::to_string(line) + ": " +
                      message);
}

double parse_double(std::size_t line, const std::string& key,
                    const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size() || !std::isfinite(parsed))
      fail(line, key + ": expected a finite number, got '" + value + "'");
    return parsed;
  } catch (const ScenarioError&) {
    throw;
  } catch (const std::exception&) {
    fail(line, key + ": expected a finite number, got '" + value + "'");
  }
}

long long parse_int(std::size_t line, const std::string& key,
                    const std::string& value) {
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(value, &used);
    if (used != value.size())
      fail(line, key + ": expected an integer, got '" + value + "'");
    return parsed;
  } catch (const ScenarioError&) {
    throw;
  } catch (const std::exception&) {
    fail(line, key + ": expected an integer, got '" + value + "'");
  }
}

std::uint64_t parse_u64(std::size_t line, const std::string& key,
                        const std::string& value) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(value, &used);
    if (used != value.size())
      fail(line, key + ": expected an unsigned integer, got '" + value + "'");
    return parsed;
  } catch (const ScenarioError&) {
    throw;
  } catch (const std::exception&) {
    fail(line, key + ": expected an unsigned integer, got '" + value + "'");
  }
}

bool parse_bool(std::size_t line, const std::string& key,
                const std::string& value) {
  if (value == "0") return false;
  if (value == "1") return true;
  fail(line, key + ": expected 0 or 1, got '" + value + "'");
}

std::string format_double(double value) {
  // Round-trip-exact rendering keeps save -> load -> save byte-stable.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

core::AlgorithmOptions Scenario::options() const {
  core::AlgorithmOptions options;
  options.engine = engine;
  options.engine.machine_procs = workload.machine_procs;
  options.engine.granularity = workload.granularity;
  return options;
}

std::string format_scenario(const Scenario& scenario) {
  std::ostringstream out;
  out << "# elastisched scenario v" << kScenarioVersion << "\n";
  out << "scenario-version = " << kScenarioVersion << "\n";
  out << "name = " << scenario.name << "\n";
  out << "family = " << scenario.family << "\n";
  out << "seed = " << scenario.seed << "\n";
  out << "expect-completion = " << (scenario.expect_completion ? 1 : 0)
      << "\n";
  out << "procs = " << scenario.workload.machine_procs << "\n";
  out << "granularity = " << scenario.workload.granularity << "\n";
  out << "requeue = " << fault::to_string(scenario.engine.requeue) << "\n";

  const fault::FailureModelConfig& failure = scenario.engine.failure;
  if (failure.enabled) {
    if (failure.script.empty()) {
      out << "fail-seed = " << failure.seed << "\n";
      out << "fail-mtbf = " << format_double(failure.mtbf) << "\n";
      out << "fail-mttr = " << format_double(failure.mttr) << "\n";
      out << "fail-min-nodes = " << failure.min_nodes << "\n";
      out << "fail-max-nodes = " << failure.max_nodes << "\n";
    }
    if (failure.max_interruptions > 0)
      out << "fail-retry-cap = " << failure.max_interruptions << "\n";
    for (const fault::Outage& outage : failure.script) {
      out << "outage = " << format_double(outage.down) << ' '
          << format_double(outage.up) << ' ' << outage.procs << "\n";
    }
  }

  const fault::CheckpointConfig& ckpt = scenario.engine.checkpoint;
  if (ckpt.enabled) {
    out << "ckpt-interval = " << format_double(ckpt.interval) << "\n";
    out << "ckpt-overhead = " << format_double(ckpt.overhead) << "\n";
    out << "ckpt-on-preempt = " << (ckpt.on_preempt ? 1 : 0) << "\n";
  }

  const sim::WatchdogConfig& watchdog = scenario.engine.watchdog;
  if (watchdog.max_events > 0)
    out << "max-events = " << watchdog.max_events << "\n";
  if (watchdog.max_sim_time > 0)
    out << "max-sim-time = " << format_double(watchdog.max_sim_time) << "\n";
  if (watchdog.no_progress_cycles > 0)
    out << "no-progress-cycles = " << watchdog.no_progress_cycles << "\n";

  out << "workload:\n";
  const workload::CwfFile file = workload::from_workload(scenario.workload);
  for (const workload::CwfRecord& record : file.records)
    out << workload::format_cwf_record(record) << "\n";
  return out.str();
}

Scenario parse_scenario(const std::string& text) {
  Scenario scenario;
  bool saw_version = false;
  bool ckpt_enabled = false;
  bool fail_stochastic = false;
  int procs = 320;
  int granularity = 32;

  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::ostringstream cwf_text;
  bool in_workload = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (in_workload) {
      cwf_text << line << "\n";
      continue;
    }
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    if (stripped == "workload:") {
      in_workload = true;
      continue;
    }
    const auto eq = stripped.find('=');
    if (eq == std::string::npos)
      fail(line_no, "expected 'key = value', got '" + stripped + "'");
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key.empty() || value.empty())
      fail(line_no, "expected 'key = value', got '" + stripped + "'");

    if (key == "scenario-version") {
      if (parse_int(line_no, key, value) != kScenarioVersion)
        fail(line_no, "unsupported scenario version '" + value + "'");
      saw_version = true;
    } else if (key == "name") {
      scenario.name = value;
    } else if (key == "family") {
      scenario.family = value;
    } else if (key == "seed") {
      scenario.seed = parse_u64(line_no, key, value);
    } else if (key == "expect-completion") {
      scenario.expect_completion = parse_bool(line_no, key, value);
    } else if (key == "procs") {
      procs = static_cast<int>(parse_int(line_no, key, value));
      if (procs <= 0) fail(line_no, "procs must be > 0");
    } else if (key == "granularity") {
      granularity = static_cast<int>(parse_int(line_no, key, value));
      if (granularity <= 0) fail(line_no, "granularity must be > 0");
    } else if (key == "requeue") {
      if (!fault::parse_requeue_policy(value, scenario.engine.requeue))
        fail(line_no, "requeue: expected head, tail or abandon");
    } else if (key == "fail-seed") {
      scenario.engine.failure.seed = parse_u64(line_no, key, value);
    } else if (key == "fail-mtbf") {
      scenario.engine.failure.mtbf = parse_double(line_no, key, value);
      if (scenario.engine.failure.mtbf <= 0)
        fail(line_no, "fail-mtbf must be > 0");
      fail_stochastic = true;
    } else if (key == "fail-mttr") {
      scenario.engine.failure.mttr = parse_double(line_no, key, value);
      if (scenario.engine.failure.mttr <= 0)
        fail(line_no, "fail-mttr must be > 0");
    } else if (key == "fail-min-nodes") {
      scenario.engine.failure.min_nodes =
          static_cast<int>(parse_int(line_no, key, value));
    } else if (key == "fail-max-nodes") {
      scenario.engine.failure.max_nodes =
          static_cast<int>(parse_int(line_no, key, value));
    } else if (key == "fail-retry-cap") {
      scenario.engine.failure.max_interruptions =
          static_cast<int>(parse_int(line_no, key, value));
    } else if (key == "outage") {
      std::istringstream fields(value);
      fault::Outage outage;
      if (!(fields >> outage.down >> outage.up >> outage.procs) ||
          !(fields >> std::ws).eof())
        fail(line_no, "outage: expected 'down up procs'");
      if (!(outage.up > outage.down) || outage.procs <= 0)
        fail(line_no, "outage: need up > down and procs > 0");
      scenario.engine.failure.script.push_back(outage);
    } else if (key == "ckpt-interval") {
      scenario.engine.checkpoint.interval = parse_double(line_no, key, value);
      if (scenario.engine.checkpoint.interval < 0)
        fail(line_no, "ckpt-interval must be >= 0");
      ckpt_enabled = true;
    } else if (key == "ckpt-overhead") {
      scenario.engine.checkpoint.overhead = parse_double(line_no, key, value);
      if (scenario.engine.checkpoint.overhead < 0)
        fail(line_no, "ckpt-overhead must be >= 0");
      ckpt_enabled = true;
    } else if (key == "ckpt-on-preempt") {
      scenario.engine.checkpoint.on_preempt = parse_bool(line_no, key, value);
      ckpt_enabled = true;
    } else if (key == "max-events") {
      scenario.engine.watchdog.max_events = parse_u64(line_no, key, value);
    } else if (key == "max-sim-time") {
      scenario.engine.watchdog.max_sim_time =
          parse_double(line_no, key, value);
    } else if (key == "no-progress-cycles") {
      scenario.engine.watchdog.no_progress_cycles =
          static_cast<int>(parse_int(line_no, key, value));
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_version) throw ScenarioError("scenario: missing scenario-version");
  if (!in_workload) throw ScenarioError("scenario: missing 'workload:' section");

  scenario.engine.failure.enabled =
      fail_stochastic || !scenario.engine.failure.script.empty();
  scenario.engine.checkpoint.enabled = ckpt_enabled;
  if (scenario.engine.failure.enabled &&
      scenario.engine.failure.max_nodes < scenario.engine.failure.min_nodes)
    throw ScenarioError("scenario: fail-max-nodes < fail-min-nodes");

  std::vector<workload::SwfParseError> errors;
  const workload::CwfFile file =
      workload::parse_cwf_string(cwf_text.str(), &errors);
  if (!errors.empty()) {
    throw ScenarioError("scenario workload line " +
                        std::to_string(errors.front().line_number) + ": " +
                        errors.front().message);
  }
  scenario.workload = workload::to_workload(file);
  scenario.workload.machine_procs = procs;
  scenario.workload.granularity = granularity;
  scenario.engine.machine_procs = procs;
  scenario.engine.granularity = granularity;
  for (const workload::Job& job : scenario.workload.jobs) {
    if (job.num > procs)
      throw ScenarioError("scenario: job " + std::to_string(job.id) +
                          " requests " + std::to_string(job.num) +
                          " procs on a " + std::to_string(procs) +
                          "-proc machine");
  }
  return scenario;
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file " + path);
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_scenario(text.str());
  } catch (const ScenarioError& error) {
    throw ScenarioError(path + ": " + error.what());
  }
}

bool save_scenario(const std::string& path, const Scenario& scenario) {
  const std::string text = format_scenario(scenario);
  return util::write_file_atomic(path, [&text](std::ostream& out) {
    out << text;
    return out.good();
  });
}

std::vector<std::string> list_corpus(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec)
    throw std::runtime_error("cannot read corpus directory " + dir + ": " +
                             ec.message());
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : it) {
    if (entry.path().extension() == ".scn") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace es::fuzz
