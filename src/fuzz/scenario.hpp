// Adversarial scenario atlas: serialized, replayable hostile scenarios.
//
// A Scenario is one fully materialized simulation setup — the workload
// (jobs + ECCs, embedded as CWF lines) plus every engine knob that shapes a
// run (requeue policy, fault injection, checkpointing, watchdog budgets).
// Scenarios are the unit the atlas fuzzes, the shrinker minimizes, the
// corpus under data/corpus/ commits, and `simrun --scenario` replays.
//
// Design rule: the workload is always *materialized*, never a generator
// recipe.  A corpus file must replay bit-identically forever, and recipe
// replay would silently invalidate the corpus every time a generator
// changes.  The (family, seed) provenance is kept as metadata only.
//
// File format (text, line-oriented, "# " comments):
//
//   # elastisched scenario v1
//   scenario-version = 1
//   name = ecc_storm-7
//   family = ecc_storm
//   seed = 7
//   expect-completion = 1
//   procs = 320
//   granularity = 32
//   requeue = head
//   fail-seed = 9            # stochastic outage knobs (fail-mtbf > 0
//   fail-mtbf = 3600         # enables them; "outage" lines below override
//   fail-mttr = 900          # with a deterministic script)
//   fail-min-nodes = 1
//   fail-max-nodes = 4
//   fail-retry-cap = 3
//   outage = 1000 1600 64    # down up procs (repeatable; scripted mode)
//   ckpt-interval = 300
//   ckpt-overhead = 10
//   ckpt-on-preempt = 0
//   max-events = 2000000     # watchdog budgets (0 = unlimited)
//   max-sim-time = 0
//   no-progress-cycles = 50000
//   workload:
//   <CWF lines until end of file>
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/factory.hpp"
#include "sched/engine_config.hpp"
#include "workload/job.hpp"

namespace es::fuzz {

/// Thrown by the load/parse paths on malformed scenario text.  Carries a
/// line-located message; I/O failures (unreadable file) are reported
/// separately so CLI front-ends can keep their exit-code conventions
/// (2 validation, 3 I/O).
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& message)
      : std::runtime_error(message) {}
};

/// One replayable hostile scenario.
struct Scenario {
  std::string name;    ///< unique-ish label, e.g. "ecc_storm-7"
  std::string family;  ///< generating family, or "repro" for minimized cases
  std::uint64_t seed = 0;  ///< family seed (provenance; replay never re-rolls)
  /// When set (the default), the oracle treats any watchdog abort as a
  /// stuck-queue / livelock violation.  Families that deliberately run into
  /// their budgets clear it.
  bool expect_completion = true;

  workload::Workload workload;  ///< materialized jobs + ECCs
  /// Engine knobs: requeue, failure (script or stochastic), checkpoint,
  /// watchdog.  machine_procs/granularity mirror the workload's and are
  /// re-synced on load/save.
  sched::EngineConfig engine;

  /// Algorithm options carrying this scenario's engine config, ready for
  /// exp::run_workload (which overrides machine shape from the workload and
  /// the ECC flags from the algorithm name).
  core::AlgorithmOptions options() const;

  std::size_t event_weight() const {
    return workload.jobs.size() + workload.eccs.size() +
           engine.failure.script.size();
  }
};

/// Renders the scenario in the file format above.
std::string format_scenario(const Scenario& scenario);

/// Parses scenario text.  Throws ScenarioError on malformed content
/// (unknown keys, bad values, CWF lines that fail to parse).
Scenario parse_scenario(const std::string& text);

/// Load from disk.  Throws ScenarioError on malformed content and
/// std::runtime_error on I/O failure (missing/unreadable file).
Scenario load_scenario(const std::string& path);

/// Save to disk (atomic write).  Returns false on I/O failure.
bool save_scenario(const std::string& path, const Scenario& scenario);

/// All "*.scn" files under `dir`, sorted by filename for deterministic
/// replay order.  Throws std::runtime_error if the directory is unreadable.
std::vector<std::string> list_corpus(const std::string& dir);

}  // namespace es::fuzz
