#include "fuzz/hostile.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "workload/generator.hpp"

namespace es::fuzz {

namespace {

// Distinct SplitMix-style salts so each family explores an independent
// region of seed space even for equal user seeds.
constexpr std::uint64_t kFamilySalt = 0x9e3779b97f4a7c15ULL;

util::Rng family_rng(const std::string& family, std::uint64_t seed) {
  std::uint64_t h = kFamilySalt;
  for (const char c : family) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  return util::Rng(h ^ seed);
}

double round_time(double value) { return std::max(0.0, std::round(value)); }

double round_duration(double value) { return std::max(1.0, std::round(value)); }

/// Quantizes every timestamp/duration/amount to whole seconds so the CWF
/// serialization (`%.0f`) round-trips exactly.
void quantize(workload::Workload& workload) {
  for (workload::Job& job : workload.jobs) {
    job.arr = round_time(job.arr);
    job.dur = round_duration(job.dur);
    if (job.actual >= 0) job.actual = round_duration(job.actual);
    if (job.start >= 0) job.start = round_time(job.start);
  }
  for (workload::Ecc& ecc : workload.eccs) {
    ecc.issue = round_time(ecc.issue);
    ecc.amount = std::max(1.0, std::round(ecc.amount));
  }
  workload.normalize();
}

fault::RequeuePolicy pick_requeue(util::Rng& rng) {
  switch (rng.uniform_int(0, 2)) {
    case 0: return fault::RequeuePolicy::kRequeueHead;
    case 1: return fault::RequeuePolicy::kRequeueTail;
    default: return fault::RequeuePolicy::kAbandon;
  }
}

Scenario base_scenario(const std::string& family, std::uint64_t seed) {
  Scenario scenario;
  scenario.family = family;
  scenario.seed = seed;
  scenario.name = family + "-" + std::to_string(seed);
  // Safety net: no hostile scenario here legitimately needs more events.
  // A run that trips these budgets is a livelock/runaway finding, which
  // is exactly what expect_completion flags for the oracle.
  scenario.engine.watchdog.max_events = 20'000'000;
  scenario.engine.watchdog.no_progress_cycles = 500'000;
  return scenario;
}

workload::GeneratorConfig base_generator(util::Rng& rng, std::size_t jobs) {
  workload::GeneratorConfig config;
  config.num_jobs = jobs;
  config.seed = rng.next_u64();
  return config;
}

Scenario make_flash_crowd(std::uint64_t seed) {
  util::Rng rng = family_rng("flash_crowd", seed);
  Scenario scenario = base_scenario("flash_crowd", seed);

  workload::GeneratorConfig config =
      base_generator(rng, 80 + static_cast<std::size_t>(rng.uniform_int(0, 60)));
  config.p_small = rng.uniform(0.2, 0.8);
  workload::Workload workload = workload::generate(config);

  // Rewrite arrivals into a handful of near-simultaneous waves.  Every
  // wave lands its whole cohort within a seconds-wide window, and a
  // sprinkle of jobs is inflated to (near-)full machine size so a wave
  // head can wall off the machine while backfill churns behind it.
  const int waves = static_cast<int>(rng.uniform_int(3, 6));
  std::vector<double> wave_start(static_cast<std::size_t>(waves));
  double t = 0;
  for (double& start : wave_start) {
    start = t;
    t += rng.exponential(2400.0);
  }
  for (workload::Job& job : workload.jobs) {
    const auto wave = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(waves) - 1));
    job.arr = wave_start[wave] + rng.uniform(0.0, 4.0);
    if (job.start >= 0) job.start = job.arr + rng.uniform(600.0, 7200.0);
    if (rng.bernoulli(0.1)) {
      job.num = workload.machine_procs -
                workload.granularity *
                    static_cast<int>(rng.uniform_int(0, 1));
    }
  }
  quantize(workload);
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

Scenario make_heavy_tail(std::uint64_t seed) {
  util::Rng rng = family_rng("heavy_tail", seed);
  Scenario scenario = base_scenario("heavy_tail", seed);

  workload::GeneratorConfig config =
      base_generator(rng, 80 + static_cast<std::size_t>(rng.uniform_int(0, 60)));
  config.p_small = rng.uniform(0.1, 0.5);
  // f-model estimate spread: users over-estimate by wildly varying factors.
  config.estimate_uniform_max = rng.uniform(2.0, 12.0);
  config.target_load = rng.uniform(0.8, 1.4);
  workload::Workload workload = workload::generate(config);

  for (workload::Job& job : workload.jobs) {
    const double roll = rng.uniform01();
    if (roll < 0.08) {
      // Monster: runtime stretched toward the cap; estimate barely covers.
      const double actual = job.actual_runtime() * rng.uniform(30.0, 120.0);
      job.actual = std::min(actual, 6.5 * 86400.0);
      job.dur = job.actual * rng.uniform(1.0, 1.3);
    } else if (roll < 0.2) {
      // Doomed: true runtime exceeds the estimate, so the engine kills the
      // job at its (possibly ECC-extended) kill-by time.
      job.actual = job.dur * rng.uniform(1.05, 2.5);
    } else if (roll < 0.5) {
      // Confetti: sub-minute jobs that keep the backfill window busy.
      job.actual = rng.uniform(1.0, 60.0);
      job.dur = std::max(job.actual, job.dur);
    }
  }
  quantize(workload);
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

Scenario make_ecc_storm(std::uint64_t seed) {
  util::Rng rng = family_rng("ecc_storm", seed);
  Scenario scenario = base_scenario("ecc_storm", seed);

  workload::GeneratorConfig config =
      base_generator(rng, 60 + static_cast<std::size_t>(rng.uniform_int(0, 50)));
  // The two probabilities share one unit budget (generator precondition:
  // p_extend + p_reduce <= 1), so draw the second from what is left.
  config.p_extend = rng.uniform(0.3, 0.6);
  config.p_reduce = rng.uniform(0.3, 1.0 - config.p_extend);
  config.p_extend_procs = rng.uniform(0.1, 0.4);
  config.p_reduce_procs = rng.uniform(0.1, 0.4);
  config.max_eccs_per_job = static_cast<int>(rng.uniform_int(2, 5));
  config.target_load = rng.uniform(0.7, 1.2);
  workload::Workload workload = workload::generate(config);

  // Contradictory and duplicate same-instant pairs: pick victims and hit
  // each with an extend+reduce (or extend+extend) pair issued at the exact
  // same instant, in both the time and the processor dimension.  Resolution
  // must be deterministic and first-wins per dimension.
  const auto pair_types =
      [](util::Rng& r) -> std::pair<workload::EccType, workload::EccType> {
    switch (r.uniform_int(0, 3)) {
      case 0: return {workload::EccType::kExtendTime,
                      workload::EccType::kReduceTime};
      case 1: return {workload::EccType::kExtendProcs,
                      workload::EccType::kReduceProcs};
      case 2: return {workload::EccType::kExtendTime,
                      workload::EccType::kExtendTime};
      default: return {workload::EccType::kReduceProcs,
                       workload::EccType::kReduceProcs};
    }
  };
  for (const workload::Job& job : workload.jobs) {
    if (!rng.bernoulli(0.25)) continue;
    const auto [first, second] = pair_types(rng);
    workload::Ecc a;
    a.job_id = job.id;
    a.issue = job.arr + rng.uniform(0.0, job.dur);
    a.type = first;
    a.amount = first == workload::EccType::kExtendTime ||
                       first == workload::EccType::kReduceTime
                   ? rng.uniform(60.0, 0.5 * job.dur + 120.0)
                   : static_cast<double>(rng.uniform_int(1, 96));
    workload::Ecc b = a;
    b.type = second;
    b.amount = second == workload::EccType::kExtendTime ||
                       second == workload::EccType::kReduceTime
                   ? rng.uniform(60.0, 0.5 * job.dur + 120.0)
                   : static_cast<double>(rng.uniform_int(1, 96));
    workload.eccs.push_back(a);
    workload.eccs.push_back(b);
  }
  // Boundary-value amounts: the occasional astronomically large (but
  // finite, CWF-valid) extension probes overflow handling downstream.
  for (const workload::Job& job : workload.jobs) {
    if (!rng.bernoulli(0.02)) continue;
    workload::Ecc extreme;
    extreme.job_id = job.id;
    extreme.issue = job.arr + rng.uniform(0.0, job.dur);
    extreme.type = workload::EccType::kExtendTime;
    extreme.amount = 1e15;
    workload.eccs.push_back(extreme);
  }
  quantize(workload);
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  // An ET of 1e15 seconds legitimately stretches the simulated horizon;
  // cap sim time instead of flagging the abort as a finding.
  scenario.engine.watchdog.max_sim_time = 1e18;
  return scenario;
}

Scenario make_outage_cascade(std::uint64_t seed) {
  util::Rng rng = family_rng("outage_cascade", seed);
  Scenario scenario = base_scenario("outage_cascade", seed);

  workload::GeneratorConfig config =
      base_generator(rng, 70 + static_cast<std::size_t>(rng.uniform_int(0, 50)));
  config.target_load = rng.uniform(0.6, 1.1);
  workload::Workload workload = workload::generate(config);
  quantize(workload);

  fault::FailureModelConfig& failure = scenario.engine.failure;
  failure.enabled = true;
  failure.max_interruptions = static_cast<int>(rng.uniform_int(1, 5));
  const int cards = workload.machine_procs / workload.granularity;
  if (rng.bernoulli(0.5)) {
    // Scripted cascade: a few correlated outages, each taking out a large
    // contiguous slice of the machine (several node cards at once).
    const int outages = static_cast<int>(rng.uniform_int(3, 6));
    double down = round_time(rng.uniform(600.0, 7200.0));
    for (int i = 0; i < outages; ++i) {
      fault::Outage outage;
      outage.down = down;
      outage.up = down + round_duration(rng.uniform(600.0, 7200.0));
      outage.procs =
          workload.granularity *
          static_cast<int>(rng.uniform_int(2, std::max(2, cards / 2)));
      failure.script.push_back(outage);
      down = outage.up + round_duration(rng.exponential(3600.0));
    }
  } else {
    // Harsh stochastic regime: MTBF on the order of job runtimes, with
    // multi-card outage sizes.
    failure.seed = rng.next_u64();
    failure.mtbf = round_duration(rng.uniform(1800.0, 7200.0));
    failure.mttr = round_duration(rng.uniform(300.0, 3600.0));
    failure.min_nodes = 1;
    failure.max_nodes = static_cast<int>(
        rng.uniform_int(2, std::max(2, cards / 2)));
  }
  scenario.engine.requeue = pick_requeue(rng);
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

Scenario make_dedicated_saturation(std::uint64_t seed) {
  util::Rng rng = family_rng("dedicated_saturation", seed);
  Scenario scenario = base_scenario("dedicated_saturation", seed);

  workload::GeneratorConfig config =
      base_generator(rng, 70 + static_cast<std::size_t>(rng.uniform_int(0, 50)));
  config.p_dedicated = rng.uniform(0.4, 0.75);
  // Short booking horizons cluster the reservations, so many dedicated
  // windows overlap and compete with the batch queue for the same procs.
  config.dedicated_start_mean = rng.uniform(600.0, 5400.0);
  config.target_load = rng.uniform(0.7, 1.2);
  workload::Workload workload = workload::generate(config);
  quantize(workload);
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

Scenario make_checkpoint_churn(std::uint64_t seed) {
  util::Rng rng = family_rng("checkpoint_churn", seed);
  Scenario scenario = base_scenario("checkpoint_churn", seed);

  workload::GeneratorConfig config =
      base_generator(rng, 60 + static_cast<std::size_t>(rng.uniform_int(0, 40)));
  config.target_load = rng.uniform(0.6, 1.0);
  workload::Workload workload = workload::generate(config);
  // Stretch a slice of the jobs so checkpoint intervals fit several times
  // into an attempt (otherwise the churn never banks anything).
  for (workload::Job& job : workload.jobs) {
    if (!rng.bernoulli(0.3)) continue;
    job.dur *= rng.uniform(3.0, 10.0);
    if (job.actual >= 0) job.actual *= rng.uniform(3.0, 10.0);
  }
  quantize(workload);

  fault::CheckpointConfig& ckpt = scenario.engine.checkpoint;
  ckpt.enabled = true;
  ckpt.interval = round_duration(rng.uniform(60.0, 900.0));
  ckpt.overhead = round_time(rng.uniform(0.0, 60.0));
  ckpt.on_preempt = rng.bernoulli(0.5);

  fault::FailureModelConfig& failure = scenario.engine.failure;
  failure.enabled = true;
  failure.seed = rng.next_u64();
  failure.mtbf = round_duration(rng.uniform(1800.0, 10800.0));
  failure.mttr = round_duration(rng.uniform(300.0, 1800.0));
  failure.min_nodes = 1;
  failure.max_nodes = static_cast<int>(rng.uniform_int(1, 4));
  failure.max_interruptions = static_cast<int>(rng.uniform_int(2, 6));
  scenario.engine.requeue = rng.bernoulli(0.5)
                                ? fault::RequeuePolicy::kRequeueHead
                                : fault::RequeuePolicy::kRequeueTail;
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

Scenario make_crash_restart(std::uint64_t seed) {
  util::Rng rng = family_rng("crash_restart", seed);
  Scenario scenario = base_scenario("crash_restart", seed);

  // The whole feature surface in one trace — elastic commands, sometimes
  // dedicated reservations, failure churn with checkpoint banking — i.e.
  // everything a snapshot has to round-trip.  The oracle treats this
  // family specially: every run is re-executed with snapshot capture,
  // killed at event boundaries and resumed, and the resumed result must
  // match the uninterrupted one exactly (check_run's restore-equivalence
  // differential).
  workload::GeneratorConfig config =
      base_generator(rng, 50 + static_cast<std::size_t>(rng.uniform_int(0, 40)));
  config.p_small = rng.uniform(0.3, 0.7);
  config.p_extend = rng.uniform(0.1, 0.4);
  config.p_reduce = rng.uniform(0.1, 0.4);
  config.p_extend_procs = rng.uniform(0.0, 0.3);
  config.p_reduce_procs = rng.uniform(0.0, 0.3);
  if (rng.bernoulli(0.4)) config.p_dedicated = rng.uniform(0.2, 0.5);
  config.target_load = rng.uniform(0.7, 1.1);
  workload::Workload workload = workload::generate(config);
  quantize(workload);

  if (rng.bernoulli(0.6)) {
    fault::FailureModelConfig& failure = scenario.engine.failure;
    failure.enabled = true;
    failure.seed = rng.next_u64();
    failure.mtbf = round_duration(rng.uniform(3600.0, 14400.0));
    failure.mttr = round_duration(rng.uniform(300.0, 1800.0));
    failure.min_nodes = 1;
    failure.max_nodes = static_cast<int>(rng.uniform_int(1, 3));
    failure.max_interruptions = static_cast<int>(rng.uniform_int(2, 5));
    scenario.engine.requeue = pick_requeue(rng);
    if (rng.bernoulli(0.5)) {
      fault::CheckpointConfig& ckpt = scenario.engine.checkpoint;
      ckpt.enabled = true;
      ckpt.interval = round_duration(rng.uniform(120.0, 1200.0));
      ckpt.overhead = round_time(rng.uniform(0.0, 45.0));
      ckpt.on_preempt = rng.bernoulli(0.5);
    }
  }
  scenario.workload = std::move(workload);
  scenario.engine.machine_procs = scenario.workload.machine_procs;
  scenario.engine.granularity = scenario.workload.granularity;
  return scenario;
}

}  // namespace

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = {
      "flash_crowd",      "heavy_tail",           "ecc_storm",
      "outage_cascade",   "dedicated_saturation", "checkpoint_churn",
      "crash_restart",
  };
  return names;
}

Scenario make_scenario(const std::string& family, std::uint64_t seed) {
  if (family == "flash_crowd") return make_flash_crowd(seed);
  if (family == "heavy_tail") return make_heavy_tail(seed);
  if (family == "ecc_storm") return make_ecc_storm(seed);
  if (family == "outage_cascade") return make_outage_cascade(seed);
  if (family == "dedicated_saturation") return make_dedicated_saturation(seed);
  if (family == "checkpoint_churn") return make_checkpoint_churn(seed);
  if (family == "crash_restart") return make_crash_restart(seed);
  throw ScenarioError("unknown hostile family '" + family + "'");
}

}  // namespace es::fuzz
