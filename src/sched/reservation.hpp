// Shadow-time / freeze computations shared by the backfilling and LOS-family
// policies (paper 'Notations' box and Algorithms 1-2).
//
// A Freeze is an implicit reservation: "at time `fret` a pending job (batch
// head or dedicated group) takes its processors; until then at most `frec`
// processors may remain occupied past `fret` by newly started jobs."
// Policies test candidates with `respects()` and account started jobs with
// `consume()`.
//
// All planning here uses *user-estimated* times (req_time): the scheduler
// cannot see true runtimes, only kill-by bounds — exactly the information
// model of EASY/LOS.
#pragma once

#include "sched/scheduler.hpp"
#include "sim/time.hpp"

namespace es::sched {

/// Implicit reservation window.
struct Freeze {
  bool active = false;
  sim::Time fret = 0;  ///< freeze end time ('shadow time')
  int frec = 0;        ///< processors usable across fret ('shadow capacity')
};

/// Planned end of a running job by its estimate (start + req_time).
sim::Time planned_end(const JobRun& job);

/// Planned residual at `now` (the paper's a.res), never negative.
double planned_residual(const JobRun& job, sim::Time now);

/// Computes the freeze for a pending need of `need_procs` that does NOT fit
/// in the current free pool (Algorithm 1 lines 13-15): walking the active
/// list in residual order, find the earliest completion instant s at which
/// free + released >= need; fret = that instant, frec = the slack beyond the
/// need at that instant.  Precondition: need_procs > ctx.free() and
/// need_procs <= machine total.
Freeze shadow_for_blocked(const SchedulerContext& ctx, int need_procs);

/// Computes the freeze induced by the first *future* dedicated job and all
/// dedicated jobs sharing its requested start time (Algorithm 2 lines 8-30).
/// If the machine cannot host the whole group at the requested start, the
/// freeze shifts to the earliest instant enough capacity frees up (the
/// "unavoidable delay" branch).  Precondition: the dedicated queue is
/// non-empty and its head's start time is in the future.
Freeze dedicated_freeze(const SchedulerContext& ctx);

/// True when starting `job` now cannot violate the freeze: the job either
/// finishes (by estimate) before fret or fits in the remaining shadow
/// capacity.  An inactive freeze admits everything.
bool respects(const Freeze& freeze, sim::Time now, const JobRun& job,
              int job_alloc);

/// Accounts `job` (just started) against the freeze: jobs whose estimate
/// crosses fret consume shadow capacity.
void consume(Freeze& freeze, sim::Time now, const JobRun& job, int job_alloc);

}  // namespace es::sched
