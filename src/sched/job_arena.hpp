// Slab arena for JobRun records.
//
// The engine used to heap-allocate one JobRun per job (a unique_ptr each);
// at million-job scale that is a million scattered allocations dragged
// through every queue walk.  The arena extends the slab idiom the PR 4
// event queue proved out: fixed-size chunks of cache-line-aligned JobRun
// records (addresses stable forever — chunks are never reallocated), a
// LIFO free list for streaming runs that retire finished jobs, and
// generation-tagged handles so a released-and-reused slot can never be
// confused with the record a stale handle meant.
//
// The cold parallel array (JobRunCold: end time, interruption count) lives
// chunk-by-chunk next to the hot records; `cold(job)` is one index away
// via JobRun::arena_slot.  See job_state.hpp for the hot/cold split
// rationale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sched/job_state.hpp"
#include "util/check.hpp"

namespace es::sched {

class JobRunArena {
 public:
  /// Records per chunk: 1024 hot records = 128 KiB, a good growth quantum
  /// for both a 200-job fig run and a million-job stream.
  static constexpr std::uint32_t kChunkJobs = 1024;

  /// Generation-tagged reference.  A default-constructed handle is null;
  /// a handle to a released slot stops resolving the moment the slot is
  /// released (the slot's generation is bumped), even before reuse.
  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;  ///< 0 = null (live generations start at 1)

    bool valid() const { return gen != 0; }
    friend bool operator==(Handle a, Handle b) {
      return a.slot == b.slot && a.gen == b.gen;
    }
  };

  JobRunArena() = default;
  JobRunArena(const JobRunArena&) = delete;
  JobRunArena& operator=(const JobRunArena&) = delete;

  /// Claims a slot and returns a freshly value-initialized record with
  /// `arena_slot` set.  Amortized O(1); grows by one chunk when the free
  /// list is empty.  Pointers remain stable until release().
  JobRun* claim() {
    if (free_.empty()) grow();
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    JobRun* job = &hot_slot(slot);
    *job = JobRun{};
    job->arena_slot = slot;
    cold_slot(slot) = JobRunCold{};
    ++live_;
    ++claims_;
    return job;
  }

  /// Returns the slot to the free list and invalidates every outstanding
  /// handle to it.  The record must have come from this arena's claim().
  void release(JobRun* job) {
    ES_EXPECTS(job != nullptr);
    const std::uint32_t slot = job->arena_slot;
    ES_EXPECTS(slot < slots() && &hot_slot(slot) == job);
    std::uint32_t& gen = gen_slot(slot);
    ES_EXPECTS(gen != 0);
    if (++gen == 0) gen = 1;  // 0 stays the null-handle sentinel on wrap
    free_.push_back(slot);
    ES_EXPECTS(live_ > 0);
    --live_;
  }

  /// Handle for a live record (claim it first).
  Handle handle_of(const JobRun& job) const {
    ES_EXPECTS(job.arena_slot < slots());
    return Handle{job.arena_slot, gen_slot(job.arena_slot)};
  }

  /// Resolves a handle; nullptr when null, out of range, or stale (the
  /// slot was released — and possibly reused — since the handle was made).
  JobRun* get(Handle h) {
    if (!h.valid() || h.slot >= slots() || gen_slot(h.slot) != h.gen)
      return nullptr;
    return &hot_slot(h.slot);
  }
  const JobRun* get(Handle h) const {
    return const_cast<JobRunArena*>(this)->get(h);
  }

  /// The cold parallel fields of a live record.
  JobRunCold& cold(const JobRun& job) {
    ES_ASSERT(job.arena_slot < slots());
    return cold_slot(job.arena_slot);
  }
  const JobRunCold& cold(const JobRun& job) const {
    return const_cast<JobRunArena*>(this)->cold(job);
  }

  std::size_t live() const { return live_; }
  std::size_t slots() const { return chunks_.size() * kChunkJobs; }
  std::uint64_t claims() const { return claims_; }

 private:
  struct Chunk {
    std::unique_ptr<JobRun[]> hot;
    std::unique_ptr<JobRunCold[]> cold;
    std::unique_ptr<std::uint32_t[]> gen;
  };

  void grow();

  JobRun& hot_slot(std::uint32_t slot) {
    return chunks_[slot / kChunkJobs].hot[slot % kChunkJobs];
  }
  JobRunCold& cold_slot(std::uint32_t slot) {
    return chunks_[slot / kChunkJobs].cold[slot % kChunkJobs];
  }
  std::uint32_t& gen_slot(std::uint32_t slot) {
    return chunks_[slot / kChunkJobs].gen[slot % kChunkJobs];
  }
  std::uint32_t gen_slot(std::uint32_t slot) const {
    return chunks_[slot / kChunkJobs].gen[slot % kChunkJobs];
  }

  std::vector<Chunk> chunks_;
  std::vector<std::uint32_t> free_;  ///< LIFO: retired slots are reused first
  std::size_t live_ = 0;
  std::uint64_t claims_ = 0;
};

}  // namespace es::sched
