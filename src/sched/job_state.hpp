// Mutable runtime state of a job inside the scheduling engine.
//
// The immutable submission (workload::Job) is wrapped with the fields the
// paper's algorithms manipulate: the current (ECC-adjusted) requirements,
// the skip count `scount` of Delayed-LOS, and bookkeeping for metrics.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace es::sched {

enum class JobStatus {
  kWaiting,    ///< in a waiting queue
  kRunning,    ///< allocated on the machine
  kCompleted,  ///< ran to its (possibly ECC-adjusted) natural end
  kKilled,     ///< hit its kill-by time before completing
  kAbandoned,  ///< preempted by a node failure and dropped (kAbandon policy)
};

/// Runtime record; owned by the engine, referenced by schedulers.
struct JobRun {
  workload::Job spec;

  // Current requirements — start equal to the submission, drift under ECCs.
  double req_time = 0;     ///< user-estimated execution time (kill-by basis)
  double actual_time = 0;  ///< true runtime the job would consume
  int num = 0;             ///< requested processors
  int alloc = 0;           ///< processors occupied when running (rounded to
                           ///< the machine granularity); 0 while waiting
  sim::Time req_start = -1;  ///< dedicated requested start time (-1 batch)

  // Delayed-LOS state.
  int scount = 0;          ///< cycles the job was skipped at queue head
  bool forced_priority = false;  ///< set when a due dedicated job is moved to
                                 ///< the batch head (Algorithm 3)

  // Failure bookkeeping.
  int interruptions = 0;   ///< times a node failure preempted this job; a
                           ///< requeued job restarts from scratch, so its
                           ///< place in the FIFO order is policy-defined

  // Lifecycle.
  JobStatus status = JobStatus::kWaiting;
  sim::Time start_time = -1;
  sim::Time end_time = -1;       ///< set when finished/killed
  sim::EventHandle finish_event{};

  // Scratch used by Reservation_DP (the paper's w.frenum attribute).
  int frenum = 0;

  bool dedicated() const { return spec.dedicated(); }

  /// Completion bound while running: the job ends at natural completion or
  /// is killed at its kill-by time, whichever comes first.
  double run_duration() const {
    return req_time < actual_time ? req_time : actual_time;
  }

  /// Residual execution time (`a.res` in the paper) at time `now`.
  /// Precondition: running.
  double residual(sim::Time now) const {
    const double end = start_time + run_duration();
    return end > now ? end - now : 0.0;
  }
};

}  // namespace es::sched
