// Mutable runtime state of a job inside the scheduling engine.
//
// The record is laid out structure-of-arrays-style for the scheduler's hot
// loops: the first cache line carries exactly the fields the active-order
// comparator, the DP eligibility scan and the freeze walks touch (times,
// requirements, checkpoint bank, status); the second line carries the
// colder linkage (queue links, arrival, finish event, arena slot).  Fields
// the engine touches at most twice per job lifetime (end time, failure
// interruption count) live in a parallel cold array owned by JobRunArena
// (sched/job_arena.hpp), so a queue of a million waiting jobs stays two
// lines per record instead of dragging metrics-only bytes through the
// cache.  The immutable submission (workload::Job) is consumed when the
// shell is built; only its id and arrival survive here.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace es::sched {

enum class JobStatus : std::uint8_t {
  kWaiting,    ///< in a waiting queue
  kRunning,    ///< allocated on the machine
  kCompleted,  ///< ran to its (possibly ECC-adjusted) natural end
  kKilled,     ///< hit its kill-by time before completing
  kAbandoned,  ///< preempted by a node failure and dropped (kAbandon policy)
};

/// Runtime record; owned by the engine's JobRunArena, referenced by
/// schedulers.  Two cache lines; see the layout static_asserts below.
struct alignas(64) JobRun {
  // --- hot line: everything the per-cycle loops read -----------------------

  // Current requirements — start equal to the submission, drift under ECCs.
  double req_time = 0;     ///< user-estimated execution time (kill-by basis)
  double actual_time = 0;  ///< true runtime the job would consume

  // Checkpoint/restart state (fault recovery layer).  Both fields stay 0
  // when the checkpoint model is disabled, which keeps every duration
  // formula below arithmetically identical to the checkpoint-free engine.
  // Hot because estimated_duration() — the active-order sort key — reads
  // them on every comparison.
  double ckpt_progress = 0;  ///< useful work banked by completed checkpoints;
                             ///< a requeued job resumes from here
  double ckpt_overhead_planned = 0;  ///< wall overhead folded into the
                                     ///< current attempt's duration

  sim::Time start_time = -1;
  workload::JobId id = 0;  ///< the submission's id (tie-breaks every order)

  int num = 0;             ///< requested processors
  int alloc = 0;           ///< processors occupied when running (rounded to
                           ///< the machine granularity); 0 while waiting

  // Delayed-LOS state.
  int scount = 0;          ///< cycles the job was skipped at queue head

  // Lifecycle.
  JobStatus status = JobStatus::kWaiting;
  bool forced_priority = false;  ///< set when a due dedicated job is moved to
                                 ///< the batch head (Algorithm 3)
  bool in_batch_queue = false;
  /// Fair-share pool tag (from workload::Job::pool, clamped to 8 bits).
  /// Ignored by every policy except FairShare; fills what used to be
  /// padding, so the hot-line layout is unchanged.
  std::uint8_t pool = 0;

  // --- second line: linkage and per-arrival constants ----------------------

  sim::Time arr = 0;         ///< submission arrival time
  sim::Time req_start = -1;  ///< dedicated requested start time (-1 batch)

  // Container back-references, so removal is O(1) instead of a linear scan.
  // The intrusive batch-queue links are owned by sched::JobQueue; the
  // active-array index is owned by the engine, which keeps it exact while
  // inserts/erases shift neighbours.  -1 / null while not enrolled.
  JobRun* queue_prev = nullptr;
  JobRun* queue_next = nullptr;
  sim::EventHandle finish_event{};
  std::int32_t active_index = -1;

  // Scratch used by Reservation_DP (the paper's w.frenum attribute).
  int frenum = 0;

  /// Slot in the owning JobRunArena; indexes the cold parallel array.
  std::uint32_t arena_slot = 0;

  bool dedicated() const { return req_start >= 0; }

  /// Useful work still to execute: the completion bound (natural end or
  /// kill-by time, whichever comes first) less work banked by checkpoints.
  double remaining_work() const {
    const double limit = req_time < actual_time ? req_time : actual_time;
    return limit > ckpt_progress ? limit - ckpt_progress : 0.0;
  }

  /// Wall duration of the current attempt: the remaining work plus the
  /// checkpoint overhead planned into it.  With checkpointing disabled this
  /// is exactly min(req_time, actual_time), the classic kill-by bound.
  double run_duration() const {
    return remaining_work() + ckpt_overhead_planned;
  }

  /// Estimate-basis duration of the current/next attempt (`req_time` less
  /// banked work, plus planned checkpoint overhead): what reservations,
  /// freezes and capacity profiles must plan with — they never see the true
  /// runtime.
  double estimated_duration() const {
    const double remaining =
        req_time > ckpt_progress ? req_time - ckpt_progress : 0.0;
    return remaining + ckpt_overhead_planned;
  }

  /// Residual execution time (`a.res` in the paper) at time `now`.
  /// Precondition: running.
  double residual(sim::Time now) const {
    const double end = start_time + run_duration();
    return end > now ? end - now : 0.0;
  }
};

// The layout contract the hot loops rely on: the comparator/eligibility
// fields share the first 64-byte line, and the whole record is exactly two
// lines so arena chunks tile cache-line boundaries.
static_assert(sizeof(JobRun) == 128, "JobRun must stay two cache lines");
static_assert(offsetof(JobRun, req_time) == 0);
static_assert(offsetof(JobRun, status) < 64,
              "eligibility fields must sit in the first cache line");
static_assert(offsetof(JobRun, arr) == 64,
              "linkage fields start the second cache line");

/// Metrics-only fields, touched once at finish/preempt and once at collect:
/// kept out of JobRun in a parallel array (indexed by JobRun::arena_slot)
/// so waiting/running records stay two dense cache lines.
struct JobRunCold {
  sim::Time end_time = -1;  ///< set when finished/killed/abandoned

  // Failure bookkeeping.
  int interruptions = 0;  ///< times a node failure preempted this job; a
                          ///< requeued job restarts from scratch, so its
                          ///< place in the FIFO order is policy-defined

  /// Streaming runs only: commands scheduled for this job that have not yet
  /// dispatched.  A finished job's record is retired the moment this hits
  /// zero, so late commands still find it (the EccProcessor's
  /// rejected-after-finish audit stays identical to the materialized run)
  /// while the arena's live set stays bounded by the jobs in flight.
  std::int32_t ecc_pending = 0;
};

}  // namespace es::sched
