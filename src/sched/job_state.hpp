// Mutable runtime state of a job inside the scheduling engine.
//
// The immutable submission (workload::Job) is wrapped with the fields the
// paper's algorithms manipulate: the current (ECC-adjusted) requirements,
// the skip count `scount` of Delayed-LOS, and bookkeeping for metrics.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "workload/job.hpp"

namespace es::sched {

enum class JobStatus {
  kWaiting,    ///< in a waiting queue
  kRunning,    ///< allocated on the machine
  kCompleted,  ///< ran to its (possibly ECC-adjusted) natural end
  kKilled,     ///< hit its kill-by time before completing
  kAbandoned,  ///< preempted by a node failure and dropped (kAbandon policy)
};

/// Runtime record; owned by the engine, referenced by schedulers.
struct JobRun {
  workload::Job spec;

  // Current requirements — start equal to the submission, drift under ECCs.
  double req_time = 0;     ///< user-estimated execution time (kill-by basis)
  double actual_time = 0;  ///< true runtime the job would consume
  int num = 0;             ///< requested processors
  int alloc = 0;           ///< processors occupied when running (rounded to
                           ///< the machine granularity); 0 while waiting
  sim::Time req_start = -1;  ///< dedicated requested start time (-1 batch)

  // Delayed-LOS state.
  int scount = 0;          ///< cycles the job was skipped at queue head
  bool forced_priority = false;  ///< set when a due dedicated job is moved to
                                 ///< the batch head (Algorithm 3)

  // Failure bookkeeping.
  int interruptions = 0;   ///< times a node failure preempted this job; a
                           ///< requeued job restarts from scratch, so its
                           ///< place in the FIFO order is policy-defined

  // Checkpoint/restart state (fault recovery layer).  Both fields stay 0
  // when the checkpoint model is disabled, which keeps every duration
  // formula below arithmetically identical to the checkpoint-free engine.
  double ckpt_progress = 0;  ///< useful work banked by completed checkpoints;
                             ///< a requeued job resumes from here
  double ckpt_overhead_planned = 0;  ///< wall overhead folded into the
                                     ///< current attempt's duration

  // Lifecycle.
  JobStatus status = JobStatus::kWaiting;
  sim::Time start_time = -1;
  sim::Time end_time = -1;       ///< set when finished/killed
  sim::EventHandle finish_event{};

  // Container back-references, so removal is O(1) instead of a linear scan.
  // The intrusive batch-queue links are owned by sched::JobQueue; the
  // active-array index is owned by the engine, which keeps it exact while
  // inserts/erases shift neighbours.  -1 / null while not enrolled.
  JobRun* queue_prev = nullptr;
  JobRun* queue_next = nullptr;
  bool in_batch_queue = false;
  std::ptrdiff_t active_index = -1;

  // Scratch used by Reservation_DP (the paper's w.frenum attribute).
  int frenum = 0;

  bool dedicated() const { return spec.dedicated(); }

  /// Useful work still to execute: the completion bound (natural end or
  /// kill-by time, whichever comes first) less work banked by checkpoints.
  double remaining_work() const {
    const double limit = req_time < actual_time ? req_time : actual_time;
    return limit > ckpt_progress ? limit - ckpt_progress : 0.0;
  }

  /// Wall duration of the current attempt: the remaining work plus the
  /// checkpoint overhead planned into it.  With checkpointing disabled this
  /// is exactly min(req_time, actual_time), the classic kill-by bound.
  double run_duration() const {
    return remaining_work() + ckpt_overhead_planned;
  }

  /// Estimate-basis duration of the current/next attempt (`req_time` less
  /// banked work, plus planned checkpoint overhead): what reservations,
  /// freezes and capacity profiles must plan with — they never see the true
  /// runtime.
  double estimated_duration() const {
    const double remaining =
        req_time > ckpt_progress ? req_time - ckpt_progress : 0.0;
    return remaining + ckpt_overhead_planned;
  }

  /// Residual execution time (`a.res` in the paper) at time `now`.
  /// Precondition: running.
  double residual(sim::Time now) const {
    const double end = start_time + run_duration();
    return end > now ? end - now : 0.0;
  }
};

}  // namespace es::sched
