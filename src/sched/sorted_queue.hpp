// Sorted-queue baselines from the paper's related-work section (II-B):
//
//  * SJF — shortest-job-first (Krakowiak): waiting jobs ordered by
//    estimated runtime; depends on good estimates.
//  * SMALLEST — smallest-job-first (Majumdar et al.): ordered by size;
//    found to perform poorly because small jobs are not necessarily short.
//  * LJF — largest-job-first (Li & Cheng): ordered by decreasing size,
//    motivated by first-fit-decreasing bin packing.
//
// Each is a greedy dispatcher over a re-sorted view of the waiting queue:
// scan in priority order, start everything that fits (no reservations).
// The studies cited in the paper (Krueger et al.) found none of these
// reliably beats FCFS — `bench/related_work_baselines` reproduces that
// comparison on our stack.
#pragma once

#include "sched/scheduler.hpp"

namespace es::sched {

enum class QueueOrder {
  kShortestFirst,   ///< by estimated runtime, ascending (SJF)
  kSmallestFirst,   ///< by size, ascending
  kLargestFirst,    ///< by size, descending (LJF / first-fit-decreasing)
};

class SortedQueue : public Scheduler {
 public:
  explicit SortedQueue(QueueOrder order) : order_(order) {}

  std::string name() const override;
  void cycle(SchedulerContext& ctx) override;

 private:
  QueueOrder order_;
};

}  // namespace es::sched
