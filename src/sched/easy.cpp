#include "sched/easy.hpp"

namespace es::sched {

int move_due_dedicated(SchedulerContext& ctx) {
  int moved = 0;
  while (JobRun* head = ctx.dedicated_head()) {
    if (head->req_start > ctx.now) break;
    ctx.move_dedicated_head_to_batch_head();
    ++moved;
  }
  return moved;
}

void Easy::cycle(SchedulerContext& ctx) {
  if (dedicated_aware_) move_due_dedicated(ctx);

  // Freeze from the first future dedicated group (EASY-D only).
  Freeze ded;
  if (dedicated_aware_ && ctx.dedicated_head()) ded = dedicated_freeze(ctx);

  // Phase 1: start head jobs while they fit and respect the dedicated
  // reservation.
  while (JobRun* head = ctx.batch_head()) {
    const int alloc = ctx.alloc_of(*head);
    if (alloc > ctx.free()) break;
    // A due dedicated job moved to the head (forced_priority) is itself a
    // rigid commitment: it overrides the future dedicated freeze, exactly as
    // Hybrid-LOS starts C_s-saturated heads unconditionally (Alg. 2 l.35-37).
    if (!head->forced_priority && !respects(ded, ctx.now, *head, alloc))
      break;
    consume(ded, ctx.now, *head, alloc);
    ctx.start(head);
  }
  JobRun* head = ctx.batch_head();
  if (head == nullptr) return;

  // Phase 2: the head is blocked.  If it is blocked by capacity, it gets the
  // classic shadow reservation; if it is blocked only by the dedicated
  // freeze, that freeze is already the binding constraint and the head waits
  // for the dedicated placement.  If it needs more than the in-service
  // capacity (nodes down), no completion chain can seat it — backfill
  // freely and reserve once the machine is repaired.
  const int head_alloc = ctx.alloc_of(*head);
  Freeze shadow;
  if (head_alloc > ctx.free() && head_alloc <= ctx.machine->available())
    shadow = shadow_for_blocked(ctx, head_alloc);

  // Phase 3: aggressive backfill — any later job that fits now and delays
  // neither the head reservation nor the dedicated freeze.
  // Iterate over a snapshot: ctx.start() mutates the queue.
  std::vector<JobRun*> candidates(std::next(ctx.batch->begin()),
                                  ctx.batch->end());
  for (JobRun* job : candidates) {
    const int alloc = ctx.alloc_of(*job);
    if (alloc > ctx.free()) continue;
    if (!respects(shadow, ctx.now, *job, alloc)) continue;
    if (!respects(ded, ctx.now, *job, alloc)) continue;
    consume(shadow, ctx.now, *job, alloc);
    consume(ded, ctx.now, *job, alloc);
    ctx.start(job);
  }
}

}  // namespace es::sched
