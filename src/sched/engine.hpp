// Simulation engine: wires a workload, a machine and a scheduling policy
// over the discrete-event kernel.
//
// Event flow (one run):
//   * every submission schedules a JobArrival at its arrival time;
//   * every dedicated job additionally schedules a DedicatedDue wake-up at
//     its requested start time;
//   * (-E variants) every ECC schedules an EccArrival at its issue time —
//     simulation order is the FCFS elastic control queue;
//   * each event updates queues/state and then runs one scheduler cycle;
//   * policy start() decisions allocate processors and schedule JobFinish at
//     start + min(actual, kill-by estimate); jobs overrunning their estimate
//     are killed, per the backfilling literature;
//   * (fault injection) the failure model chains NodeDown/NodeUp pairs: a
//     NodeDown preempts enough running jobs to cover the lost capacity and
//     applies the requeue policy; the paired NodeUp restores the processors
//     and, while unfinished jobs remain, schedules the next outage.
//
// The engine core does machine/queue/active-set mechanics only.  Every
// cross-cutting concern — audit tracing, failure accounting, checkpoint
// recovery bookkeeping, watchdog progress notes, ECC audits, cycle
// statistics — is an EngineObserver on the attachment chain
// (sched/attach/), registered at construction from the EngineConfig and
// dispatched at each lifecycle site.  See sched/attach/observer.hpp for
// the chain's ordering rules and docs/architecture.md for the map.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/machine.hpp"
#include "cluster/utilization.hpp"
#include "fault/failure_model.hpp"
#include "sched/attach/checkpoint_observer.hpp"
#include "sched/attach/cycle_stats_observer.hpp"
#include "sched/attach/ecc_audit_observer.hpp"
#include "sched/attach/failure_stats_observer.hpp"
#include "sched/attach/fairness_observer.hpp"
#include "sched/attach/observer.hpp"
#include "sched/attach/trace_observer.hpp"
#include "sched/attach/watchdog_progress_observer.hpp"
#include "sched/ecc_processor.hpp"
#include "sched/engine_config.hpp"
#include "sched/job_arena.hpp"
#include "sched/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulation.hpp"
#include "sim/watchdog.hpp"
#include "workload/job.hpp"
#include "workload/source.hpp"

namespace es::snap {
class SnapshotWriter;
class SnapshotReader;
class SnapshotRing;
}  // namespace es::snap

namespace es::sched {

/// One engine instance runs one workload with one policy.
class Engine {
 public:
  Engine(const EngineConfig& config, Scheduler& policy);
  ~Engine();

  /// Appends an external observer to the attachment chain, after the
  /// config-selected built-ins.  Must be called before run(); the engine
  /// does not take ownership.
  void add_observer(EngineObserver* observer, HookMask mask = kAllHooks) {
    attachments_.add(observer, mask);
  }

  /// Runs the whole workload to completion and returns the metrics.
  SimulationResult run(const workload::Workload& workload);

  /// Streaming variant: drains a JobSource chunk by chunk instead of a
  /// materialized workload, holding only the jobs in flight.  Arrivals of
  /// the next chunk are scheduled when the last scheduled arrival fires;
  /// finished jobs are folded into the metrics immediately and their arena
  /// records retired once their last command has dispatched.  For the same
  /// trace the result is byte-identical to run() (see workload/source.hpp
  /// for the ordering contracts that guarantee it), with two exceptions on
  /// watchdog-aborted runs only: `unfinished` counts built-not-finished
  /// jobs (not-yet-generated ones are unknown) and `utilization` integrates
  /// through the last record.  Snapshots, paranoid mode and restore are
  /// incompatible with retired job state and are rejected.
  SimulationResult run_streamed(workload::JobSource& source);

  // --- crash-consistent snapshot/restore ----------------------------------

  /// Serializes the engine's complete mid-run state into `writer`: clock,
  /// pending events (with their original sequence numbers), per-job runtime
  /// state, queue/active/finished order, machine and utilization ledgers,
  /// ECC-processor cursor and conflict shield, failure-model RNG stream,
  /// every enabled attachment ledger, and policy cross-cycle state.  Only
  /// valid between events (never from inside a scheduler cycle).
  void snapshot(snap::SnapshotWriter& writer) const;

  /// Restores a snapshot taken by an engine running `workload` with an
  /// equivalent configuration.  Must be the first call on a fresh engine.
  /// Throws snap::SnapshotError: kMismatch when the snapshot belongs to a
  /// different (workload, machine, policy, fault-config) combination,
  /// kCorrupt when the content is structurally damaged.
  void restore(const workload::Workload& workload,
               snap::SnapshotReader& reader);

  /// restore() + event pump + collect: continues the interrupted run to
  /// completion and returns metrics identical to the uninterrupted run.
  SimulationResult resume(const workload::Workload& workload,
                          snap::SnapshotReader& reader);

  /// Receives every periodic snapshot image (in addition to the disk ring,
  /// when SnapshotPolicy::dir is set).  Used by the crash-recovery
  /// harnesses to capture kill-point snapshots without filesystem traffic.
  using SnapshotSink = std::function<void(const std::string&)>;
  void set_snapshot_sink(SnapshotSink sink) {
    snapshot_sink_ = std::move(sink);
  }

  /// Periodic snapshots taken so far (tests/diagnostics).
  std::uint64_t snapshots_taken() const { return snapshots_taken_; }

  /// The machine, exposed for tests that inspect the final state.
  const cluster::Machine& machine() const { return machine_; }

 private:
  void on_arrival(JobRun* job);
  void on_dedicated_due(JobRun* job);
  void on_ecc(const workload::Ecc& ecc);
  void on_finish(JobRun* job);
  void on_node_down(const fault::Outage& outage);
  void on_node_up(int procs);
  void schedule_next_outage(sim::Time from);
  void preempt_victim();
  /// Policy-initiated preemption (SchedulerContext::preempt): the shared
  /// preempt sequence with a forced tail requeue.
  void preempt_running(JobRun* job);
  /// Shared preempt machinery: cancel, release, retry-cap check, attachment
  /// hooks, requeue under `policy`.
  void preempt_job(JobRun* job, fault::RequeuePolicy requeue_policy);
  void start_job(JobRun* job);
  void finish_job(JobRun* job);
  void insert_active(JobRun* job);
  void remove_active(JobRun* job);
  void reposition_active(JobRun* job);
  void move_dedicated_head_to_batch_head();
  void warn_if_unbounded_retry(const workload::Workload& workload) const;
  void run_cycle();
  void pump_events();
  void maybe_snapshot();
  void check_invariants() const;
  CycleInfo cycle_info() const;
  ParanoidSnapshot paranoid_snapshot() const;
  bool all_jobs_finished() const {
    return streaming_ ? source_exhausted_ && jobs_retired_ == jobs_built_
                      : finished_.size() == jobs_.size();
  }
  SimulationResult collect(const workload::Workload& workload) const;

  /// Running sums behind the mean metrics; see fold_outcome().
  struct FoldSums {
    double wait_sum = 0;
    double run_sum = 0;
    double sd_sum = 0;
    double bsd_sum = 0;
    double dedicated_delay_sum = 0;
    std::uint64_t dedicated_count = 0;
    std::uint64_t count = 0;
  };
  JobOutcome outcome_of(const JobRun* job) const;
  static void fold_outcome(const JobOutcome& outcome, SimulationResult& result,
                           FoldSums& sums,
                           std::vector<double>* defer_wasted = nullptr);
  /// The shared collect() epilogue: means from the fold sums, utilization,
  /// downtime.  Identical arithmetic for both run modes.
  void finalize_aggregate(SimulationResult& result,
                          const FoldSums& sums) const;
  JobRun* build_job(const workload::Job& spec);

  // --- streaming-mode internals (see run_streamed) -------------------------

  /// Pulls and schedules the next chunk; returns false at end of stream.
  bool load_next_chunk();
  /// Folds a finished job into the streaming accumulators (same op order as
  /// the collect() loop) — does not release the record.
  void retire_streamed(JobRun* job);
  /// Releases a finished job's record once no scheduled command still
  /// targets it.  No-op outside streaming mode or while commands pend.
  void maybe_release(JobRun* job);
  SimulationResult collect_streamed();
  /// Streaming replay of workload::offered_load(): same accumulator order
  /// over jobs in build (= workload) order.
  double streamed_offered_load() const;

  /// Creates the JobRun shells and the id index from the workload (shared
  /// by run() and restore(); schedules no events) and computes the
  /// workload/config fingerprint restore validates against.
  void build_jobs(const workload::Workload& workload);
  /// Post-pump bookkeeping shared by run() and resume(): completed-run
  /// postconditions, metric collection, perf counters.
  SimulationResult finish_run(
      const workload::Workload& workload,
      std::chrono::steady_clock::time_point run_start);
  JobRun* job_by_id(workload::JobId id) const;

  EngineConfig config_;
  Scheduler* policy_;
  sim::Simulation sim_;
  cluster::Machine machine_;
  cluster::UtilizationTracker utilization_;
  EccProcessor ecc_processor_;
  fault::FailureModel failure_model_;

  // The lifecycle event bus.  Built-in attachments are plain members (no
  // heap); the constructor registers the enabled ones with the chain in
  // the canonical order (see attach/observer.hpp).  AbortFlag lets the
  // watchdog-progress attachment abort the stepping event pump.
  AbortFlag abort_;
  CheckpointObserver checkpoint_attach_;
  FailureStatsObserver failure_attach_;
  EccAuditObserver ecc_audit_attach_;
  TraceObserver trace_attach_;
  WatchdogProgressObserver progress_attach_;
  CycleStatsObserver cycle_stats_attach_;
  FairnessObserver fairness_attach_;
  AttachmentChain attachments_;

  JobRunArena arena_;          ///< owns every JobRun (and its cold fields)
  std::vector<JobRun*> jobs_;  ///< arena records in workload order
  std::unordered_map<workload::JobId, JobRun*> by_id_;
  JobQueue batch_queue_;                  ///< intrusive FIFO (W^b)
  std::vector<JobRun*> dedicated_queue_;  ///< sorted by (req_start, arr)
  std::vector<JobRun*> active_;  ///< running jobs, kept sorted by
                                 ///< (planned end, id); JobRun::active_index
                                 ///< back-references positions
  std::vector<JobRun*> finished_;

  // Cache keys handed to policies through SchedulerContext: the epoch is
  // process-unique per engine, the version bumps on every active-set
  // mutation (see bump_active_version callers).
  std::uint64_t run_epoch_ = 0;
  std::uint64_t active_version_ = 0;

  bool in_cycle_ = false;
  std::uint64_t cycles_ = 0;
  sim::Time first_arrival_ = 0;
  sim::Time last_finish_ = 0;

  // Perf observability: DP counters are policy-cumulative, so run() keeps a
  // start snapshot and reports the delta; cycle wall time accumulates
  // around every policy cycle() call.
  DpCounters dp_baseline_;
  double cycle_seconds_ = 0;

  sim::TerminationReason termination_ = sim::TerminationReason::kCompleted;

  // Streaming-mode state.  jobs_/finished_ stay empty in this mode; the
  // fold accumulators replace the collect()-time loop and `stream_result_`
  // carries the counter fields fold_outcome() increments.  Wasted-work
  // terms are deferred (FailureStatsObserver::on_collect *assigns* the
  // failure ledger, so per-job wasted work must be replayed after it).
  bool streaming_ = false;
  workload::JobSource* source_ = nullptr;
  bool source_exhausted_ = true;
  workload::SourceChunk chunk_;           ///< reused pull buffer
  std::size_t arrivals_pending_ = 0;      ///< scheduled, not yet fired
  std::uint64_t jobs_built_ = 0;
  std::uint64_t jobs_retired_ = 0;
  std::uint64_t eccs_scheduled_ = 0;      ///< event tags, as run() numbers them
  FoldSums stream_sums_;
  SimulationResult stream_result_;
  std::vector<double> stream_wasted_;
  std::vector<JobOutcome> stream_outcomes_;  ///< only if keep_job_outcomes
  double stream_proc_seconds_ = 0;        ///< offered-load accumulators
  sim::Time stream_span_origin_ = 0;
  sim::Time stream_span_last_ = 0;

  // Snapshot/restore machinery.  `pending_outage_` mirrors the payload of
  // the (at most one) scheduled NodeDown event — callbacks cannot
  // serialize, so the outage travels through the snapshot and the restore
  // path rebuilds the closure from it.
  std::uint64_t workload_fingerprint_ = 0;
  bool has_pending_outage_ = false;
  fault::Outage pending_outage_{};
  bool restored_ = false;
  SnapshotSink snapshot_sink_;
  std::unique_ptr<snap::SnapshotRing> ring_;
  std::uint64_t last_snapshot_cycle_ = 0;
  std::uint64_t snapshots_taken_ = 0;
};

/// Convenience wrapper: one-shot run.
SimulationResult simulate(const EngineConfig& config, Scheduler& policy,
                          const workload::Workload& workload);

}  // namespace es::sched
