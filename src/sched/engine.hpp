// Simulation engine: wires a workload, a machine and a scheduling policy
// over the discrete-event kernel.
//
// Event flow (one run):
//   * every submission schedules a JobArrival at its arrival time;
//   * every dedicated job additionally schedules a DedicatedDue wake-up at
//     its requested start time;
//   * (-E variants) every ECC schedules an EccArrival at its issue time —
//     simulation order is the FCFS elastic control queue;
//   * each event updates queues/state and then runs one scheduler cycle;
//   * policy start() decisions allocate processors and schedule JobFinish at
//     start + min(actual, kill-by estimate); jobs overrunning their estimate
//     are killed, per the backfilling literature;
//   * (fault injection) the failure model chains NodeDown/NodeUp pairs: a
//     NodeDown preempts enough running jobs to cover the lost capacity and
//     applies the requeue policy; the paired NodeUp restores the processors
//     and, while unfinished jobs remain, schedules the next outage;
//   * (checkpoint recovery) with a CheckpointModel attached, a preempted
//     job banks the work saved by its last checkpoint and resumes from
//     remaining = runtime - banked instead of restarting from scratch;
//   * (watchdog) with budgets configured, the event loop aborts gracefully
//     — typed TerminationReason, partial metrics — instead of hanging on a
//     pathological configuration.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/machine.hpp"
#include "cluster/utilization.hpp"
#include "fault/checkpoint.hpp"
#include "fault/failure_model.hpp"
#include "sched/ecc_processor.hpp"
#include "sched/metrics.hpp"
#include "sched/scheduler.hpp"
#include "sched/trace.hpp"
#include "sim/simulation.hpp"
#include "sim/watchdog.hpp"
#include "workload/job.hpp"

namespace es::sched {

struct EngineConfig {
  int machine_procs = 320;
  int granularity = 32;
  /// Process ECCs (the -E algorithm variants).  When false, ECCs in the
  /// workload are ignored and jobs keep their submitted requirements.
  bool process_eccs = false;
  /// Allow EP/RP to resize *running* jobs work-conservingly (the paper's
  /// section-VI resource-elasticity extension).  Requires process_eccs.
  bool allow_running_resize = false;
  /// Record the busy-processor timeline (needed by utilization metrics and
  /// capacity-invariant tests; cheap, on by default).
  bool keep_job_outcomes = true;
  /// Record a full schedule audit trace (sched/trace.hpp), attached to the
  /// result.  Off by default — it grows with the event count.
  bool record_trace = false;
  /// Re-verify structural invariants (ledger consistency, queue ordering,
  /// status coherence) after every scheduling cycle.  O(queue) per cycle;
  /// used by the test suite and for debugging new policies.
  bool paranoid = false;
  /// Fault injection: when `failure.enabled`, NodeDown/NodeUp events shrink
  /// and restore machine capacity during the run (default: off, which keeps
  /// every result bit-identical to the failure-free engine).
  fault::FailureModelConfig failure;
  /// What happens to running jobs preempted when capacity is lost.
  fault::RequeuePolicy requeue = fault::RequeuePolicy::kRequeueHead;
  /// Checkpoint/restart recovery: when enabled, preempted-then-requeued
  /// jobs resume from their last checkpoint (remaining = runtime - banked)
  /// instead of restarting from scratch, at the cost of periodic checkpoint
  /// overhead.  Default: disabled, byte-identical to the seed engine.
  fault::CheckpointConfig checkpoint;
  /// Termination guardrails: event / sim-time / wall-clock budgets plus a
  /// no-progress detector.  When any budget trips, the run aborts
  /// gracefully and the result carries partial metrics tagged with a typed
  /// TerminationReason.  Default: disabled (the exact seed event loop).
  sim::WatchdogConfig watchdog;
};

/// One engine instance runs one workload with one policy.
class Engine {
 public:
  Engine(const EngineConfig& config, Scheduler& policy);

  /// Runs the whole workload to completion and returns the metrics.
  SimulationResult run(const workload::Workload& workload);

  /// The machine, exposed for tests that inspect the final state.
  const cluster::Machine& machine() const { return machine_; }

 private:
  void on_arrival(JobRun* job);
  void on_dedicated_due(JobRun* job);
  void on_ecc(const workload::Ecc& ecc);
  void on_finish(JobRun* job);
  void on_node_down(const fault::Outage& outage);
  void on_node_up(int procs);
  void schedule_next_outage(sim::Time from);
  void preempt_victim();
  void start_job(JobRun* job);
  void finish_job(JobRun* job);
  void insert_active(JobRun* job);
  void remove_active(JobRun* job);
  void reposition_active(JobRun* job);
  void move_dedicated_head_to_batch_head();
  void refresh_checkpoint_plan(JobRun* job);
  void warn_if_unbounded_retry(const workload::Workload& workload) const;
  void run_cycle();
  void note_cycle_progress();
  void pump_events();
  void check_invariants() const;
  bool all_jobs_finished() const { return finished_.size() == jobs_.size(); }
  SimulationResult collect(const workload::Workload& workload) const;

  EngineConfig config_;
  Scheduler* policy_;
  sim::Simulation sim_;
  cluster::Machine machine_;
  cluster::UtilizationTracker utilization_;
  EccProcessor ecc_processor_;
  fault::FailureModel failure_model_;
  fault::CheckpointModel checkpoint_;
  FailureStats failure_stats_;
  std::shared_ptr<ScheduleTrace> trace_;  ///< null unless record_trace

  std::vector<std::unique_ptr<JobRun>> jobs_;
  std::unordered_map<workload::JobId, JobRun*> by_id_;
  JobQueue batch_queue_;                  ///< intrusive FIFO (W^b)
  std::vector<JobRun*> dedicated_queue_;  ///< sorted by (req_start, arr)
  std::vector<JobRun*> active_;  ///< running jobs, kept sorted by
                                 ///< (planned end, id); JobRun::active_index
                                 ///< back-references positions
  std::vector<JobRun*> finished_;

  // Cache keys handed to policies through SchedulerContext: the epoch is
  // process-unique per engine, the version bumps on every active-set
  // mutation (see bump_active_version callers).
  std::uint64_t run_epoch_ = 0;
  std::uint64_t active_version_ = 0;

  bool in_cycle_ = false;
  std::uint64_t cycles_ = 0;
  sim::Time first_arrival_ = 0;
  sim::Time last_finish_ = 0;

  // Perf observability: DP counters are policy-cumulative, so run() keeps a
  // start snapshot and reports the delta; cycle wall time accumulates
  // around every policy cycle() call.
  DpCounters dp_baseline_;
  double cycle_seconds_ = 0;

  // Watchdog state.
  sim::TerminationReason termination_ = sim::TerminationReason::kCompleted;
  std::uint64_t starts_ = 0;    ///< job starts so far (progress signal)
  std::uint64_t finishes_ = 0;  ///< job completions so far (progress signal)
  std::uint64_t progress_marker_ = 0;  ///< starts_ + finishes_ at the last
                                       ///< cycle that made progress
  int stalled_cycles_ = 0;
  bool no_progress_tripped_ = false;
};

/// Convenience wrapper: one-shot run.
SimulationResult simulate(const EngineConfig& config, Scheduler& policy,
                          const workload::Workload& workload);

}  // namespace es::sched
