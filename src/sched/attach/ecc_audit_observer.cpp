#include "sched/attach/ecc_audit_observer.hpp"

#include "sched/metrics.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace es::sched {

void EccAuditObserver::on_ecc_applied(sim::Time now, const JobRun& job,
                                      const workload::Ecc& ecc,
                                      EccOutcome outcome) {
  (void)now;
  (void)job;
  (void)ecc;
  ++dispatched_;
  switch (outcome) {
    case EccOutcome::kRejectedFinished:
    case EccOutcome::kRejectedShape:
    case EccOutcome::kRejectedBounds:
      ++rejected_;
      break;
    case EccOutcome::kSkippedConflict:
      ++conflicts_;
      break;
    default:
      break;
  }
}

void EccAuditObserver::on_ecc_unknown_job(sim::Time now,
                                          const workload::Ecc& ecc) {
  (void)now;
  ES_LOG_WARN("ECC for unknown job %lld skipped",
              static_cast<long long>(ecc.job_id));
  ++unknown_;
}

void EccAuditObserver::on_collect(SimulationResult& result) const {
  // The processor never sees skipped commands, so its ledger carries no
  // unknown-job count; the audit deposits it into the merged stats.
  result.ecc.unknown_job += unknown_;
}

void EccAuditObserver::on_paranoid_check(
    const ParanoidSnapshot& snapshot) const {
  // Every command the engine dispatched ran exactly one apply(), and every
  // kRejected* outcome came from exactly one rejected++ inside it.
  ES_ASSERT(snapshot.ecc != nullptr);
  ES_ASSERT_MSG(snapshot.ecc->processed == dispatched_,
                "t=%.3f cycle=%llu processed=%llu dispatched=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(snapshot.ecc->processed),
                static_cast<unsigned long long>(dispatched_));
  ES_ASSERT_MSG(snapshot.ecc->rejected == rejected_,
                "t=%.3f cycle=%llu ledger=%llu audited=%llu", snapshot.now,
                static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(snapshot.ecc->rejected),
                static_cast<unsigned long long>(rejected_));
  ES_ASSERT_MSG(snapshot.ecc->conflicts == conflicts_,
                "t=%.3f cycle=%llu ledger=%llu audited=%llu", snapshot.now,
                static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(snapshot.ecc->conflicts),
                static_cast<unsigned long long>(conflicts_));
}

}  // namespace es::sched
