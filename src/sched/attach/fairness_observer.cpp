#include "sched/attach/fairness_observer.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "sched/metrics.hpp"
#include "util/check.hpp"

namespace es::sched {
namespace {

/// Nearest-rank quantile over an already-sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const double rank = q * static_cast<double>(sorted.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(rank));
  if (index > 0) --index;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

FairnessObserver::FairnessObserver(const FairShareConfig& config,
                                   int machine_procs)
    : config_(config), machine_procs_(machine_procs) {
  ES_EXPECTS(machine_procs_ > 0);
  ensure_pool(static_cast<int>(config_.pools.size()) - 1);
}

void FairnessObserver::ensure_pool(int pool) {
  if (pool < 0) return;
  const std::size_t need = static_cast<std::size_t>(pool) + 1;
  if (pending_.size() >= need) return;
  pending_.resize(need, 0);
  running_alloc_.resize(need, 0);
  backlogged_seconds_.resize(need, 0);
  service_integral_.resize(need, 0);
  waits_.resize(need);
}

double FairnessObserver::weight_of(std::size_t pool) const {
  return pool < config_.pools.size() ? config_.pools[pool].weight : 1.0;
}

void FairnessObserver::advance(sim::Time now) {
  if (!clock_started_) {
    clock_started_ = true;
    last_time_ = now;
    return;
  }
  const double dt = now - last_time_;
  if (dt > 0) {
    for (std::size_t p = 0; p < pending_.size(); ++p) {
      if (pending_[p] == 0) continue;
      backlogged_seconds_[p] += dt;
      service_integral_[p] += running_alloc_[p] * dt;
    }
    last_time_ = now;
  }
}

void FairnessObserver::mark_waiting(sim::Time now, const JobRun& job) {
  ensure_pool(job.pool);
  waiting_[job.id] = Waiting{job.pool, now};
  ++pending_[static_cast<std::size_t>(job.pool)];
}

void FairnessObserver::on_arrival(sim::Time now, const JobRun& job) {
  advance(now);
  // Dedicated jobs are excluded: their start time is user-mandated, so the
  // scheduler cannot be fair or unfair to them.
  if (!job.dedicated()) mark_waiting(now, job);
}

void FairnessObserver::on_start(sim::Time now, const JobRun& job,
                                bool /*backfilled*/) {
  advance(now);
  ensure_pool(job.pool);
  const std::size_t p = static_cast<std::size_t>(job.pool);
  const auto it = waiting_.find(job.id);
  if (it != waiting_.end()) {
    waits_[p].push_back(now - it->second.since);
    ES_EXPECTS(pending_[static_cast<std::size_t>(it->second.pool)] > 0);
    --pending_[static_cast<std::size_t>(it->second.pool)];
    waiting_.erase(it);
  }
  running_alloc_[p] += job.alloc;
}

void FairnessObserver::on_finish(sim::Time now, const JobRun& job) {
  advance(now);
  ensure_pool(job.pool);
  const auto it = waiting_.find(job.id);
  if (it != waiting_.end()) {
    // Finished without ever starting (e.g. an ECC collapsed the job while it
    // was queued): close the pending entry without a wait sample.
    --pending_[static_cast<std::size_t>(it->second.pool)];
    waiting_.erase(it);
    return;
  }
  running_alloc_[static_cast<std::size_t>(job.pool)] -= job.alloc;
}

void FairnessObserver::on_preempt(sim::Time now, PreemptInfo& info) {
  advance(now);
  ensure_pool(info.job->pool);
  running_alloc_[static_cast<std::size_t>(info.job->pool)] -= info.job->alloc;
}

void FairnessObserver::on_requeue(sim::Time now, const JobRun& job,
                                  int /*alloc*/) {
  advance(now);
  // The new wait starts now: a preempted tenant queues again.
  mark_waiting(now, job);
}

void FairnessObserver::on_abandon(sim::Time now, const JobRun& job,
                                  int /*alloc*/) {
  advance(now);
  const auto it = waiting_.find(job.id);
  if (it != waiting_.end()) {
    --pending_[static_cast<std::size_t>(it->second.pool)];
    waiting_.erase(it);
  }
}

void FairnessObserver::on_collect(SimulationResult& result) const {
  FairnessStats& out = result.perf.fairness;
  out.collected = true;
  out.pools.clear();
  const std::size_t npools = pending_.size();
  if (npools == 0) {
    out.jain = 1.0;
    return;
  }
  double total_weight = 0;
  for (std::size_t p = 0; p < npools; ++p) total_weight += weight_of(p);

  double sum = 0, sum_sq = 0;
  std::size_t backlogged_pools = 0;
  for (std::size_t p = 0; p < npools; ++p) {
    PoolFairnessStats pool;
    pool.name = p < config_.pools.size() && !config_.pools[p].name.empty()
                    ? config_.pools[p].name
                    : "pool" + std::to_string(p);
    pool.weight = weight_of(p);
    pool.entitlement_share = pool.weight / total_weight;
    std::vector<double> sorted = waits_[p];
    std::sort(sorted.begin(), sorted.end());
    pool.started = sorted.size();
    if (!sorted.empty()) {
      double total = 0;
      for (const double w : sorted) total += w;
      pool.wait_mean = total / static_cast<double>(sorted.size());
      pool.wait_p50 = quantile_sorted(sorted, 0.50);
      pool.wait_p99 = quantile_sorted(sorted, 0.99);
      pool.wait_max = sorted.back();
    }
    pool.backlogged_seconds = backlogged_seconds_[p];
    if (pool.backlogged_seconds > 0) {
      pool.service_share = service_integral_[p] / pool.backlogged_seconds /
                           static_cast<double>(machine_procs_);
      pool.satisfaction =
          std::min(1.0, pool.service_share / pool.entitlement_share);
      sum += pool.satisfaction;
      sum_sq += pool.satisfaction * pool.satisfaction;
      ++backlogged_pools;
    }
    out.pools.push_back(std::move(pool));
  }
  out.jain = backlogged_pools == 0
                 ? 1.0
                 : (sum * sum) / (static_cast<double>(backlogged_pools) *
                                  sum_sq);
}

void FairnessObserver::save_state(snap::SnapshotWriter& w) const {
  w.boolean(clock_started_);
  w.f64(last_time_);
  w.u64(pending_.size());
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    w.u32(pending_[p]);
    w.f64(running_alloc_[p]);
    w.f64(backlogged_seconds_[p]);
    w.f64(service_integral_[p]);
    w.u64(waits_[p].size());
    for (const double wait : waits_[p]) w.f64(wait);
  }
  // Deterministic order for the open-wait map.
  std::vector<std::pair<workload::JobId, Waiting>> open(waiting_.begin(),
                                                        waiting_.end());
  std::sort(open.begin(), open.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u64(open.size());
  for (const auto& [id, entry] : open) {
    w.i64(id);
    w.i32(entry.pool);
    w.f64(entry.since);
  }
}

void FairnessObserver::restore_state(snap::SnapshotReader& r) {
  clock_started_ = r.boolean();
  last_time_ = r.f64();
  const std::uint64_t npools = r.u64();
  pending_.clear();
  running_alloc_.clear();
  backlogged_seconds_.clear();
  service_integral_.clear();
  waits_.clear();
  ensure_pool(static_cast<int>(npools) - 1);
  for (std::uint64_t p = 0; p < npools; ++p) {
    pending_[p] = r.u32();
    running_alloc_[p] = r.f64();
    backlogged_seconds_[p] = r.f64();
    service_integral_[p] = r.f64();
    const std::uint64_t nwaits = r.u64();
    waits_[p].reserve(nwaits);
    for (std::uint64_t i = 0; i < nwaits; ++i) waits_[p].push_back(r.f64());
  }
  waiting_.clear();
  const std::uint64_t nwaiting = r.u64();
  for (std::uint64_t i = 0; i < nwaiting; ++i) {
    const workload::JobId id = r.i64();
    Waiting entry;
    entry.pool = r.i32();
    entry.since = r.f64();
    waiting_.emplace(id, entry);
  }
}

}  // namespace es::sched
