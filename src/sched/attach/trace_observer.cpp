#include "sched/attach/trace_observer.hpp"

#include "sched/metrics.hpp"

namespace es::sched {

void TraceObserver::on_arrival(sim::Time now, const JobRun& job) {
  trace_->record(now, TraceEventKind::kArrival, job.id, job.num);
}

void TraceObserver::on_start(sim::Time now, const JobRun& job,
                             bool backfilled) {
  (void)backfilled;
  trace_->record(now, TraceEventKind::kStart, job.id, job.alloc);
}

void TraceObserver::on_finish(sim::Time now, const JobRun& job) {
  trace_->record(now,
                 job.status == JobStatus::kKilled ? TraceEventKind::kKill
                                                  : TraceEventKind::kFinish,
                 job.id, job.alloc);
}

void TraceObserver::on_ecc_applied(sim::Time now, const JobRun& job,
                                   const workload::Ecc& ecc,
                                   EccOutcome outcome) {
  TraceEventKind kind;
  switch (outcome) {
    case EccOutcome::kResizedRunning:
      kind = TraceEventKind::kResize;
      break;
    case EccOutcome::kRejectedFinished:
    case EccOutcome::kRejectedShape:
    case EccOutcome::kRejectedBounds:
    case EccOutcome::kSkippedConflict:
      kind = TraceEventKind::kEccRejected;
      break;
    default:
      kind = TraceEventKind::kEccApplied;
      break;
  }
  trace_->record(now, kind, job.id, job.num, ecc.amount);
}

void TraceObserver::on_node_down(sim::Time now, int procs) {
  trace_->record(now, TraceEventKind::kNodeDown, 0, procs);
}

void TraceObserver::on_node_up(sim::Time now, int procs) {
  trace_->record(now, TraceEventKind::kNodeUp, 0, procs);
}

void TraceObserver::on_preempt(sim::Time now, PreemptInfo& info) {
  // Fires after CheckpointObserver/FailureStatsObserver filled saved/lost
  // (chain order), so the record carries the final lost-work figure.
  trace_->record(now, TraceEventKind::kPreempt, info.job->id,
                 info.job->alloc, info.lost);
}

void TraceObserver::on_requeue(sim::Time now, const JobRun& job, int alloc) {
  trace_->record(now, TraceEventKind::kRequeue, job.id, alloc);
}

void TraceObserver::on_abandon(sim::Time now, const JobRun& job, int alloc) {
  trace_->record(now, TraceEventKind::kAbandon, job.id, alloc);
}

void TraceObserver::on_dedicated_move(sim::Time now, const JobRun& job) {
  trace_->record(now, TraceEventKind::kDedicatedMove, job.id);
}

void TraceObserver::on_collect(SimulationResult& result) const {
  result.trace = trace_;
}

void TraceObserver::save_state(snap::SnapshotWriter& w) const {
  const std::size_t count = trace_ ? trace_->events().size() : 0;
  w.u64(count);
  if (trace_ == nullptr) return;
  for (const TraceEvent& e : trace_->events()) {
    w.f64(e.time);
    w.i32(static_cast<std::int32_t>(e.kind));
    w.i64(e.job);
    w.i32(e.procs);
    w.f64(e.detail);
  }
}

void TraceObserver::restore_state(snap::SnapshotReader& r) {
  const std::uint64_t count = r.u64();
  if (trace_ == nullptr) {
    if (count != 0) {
      throw snap::SnapshotError(
          snap::SnapshotErrorKind::kMismatch,
          "snapshot carries a trace but tracing is disabled on restore");
    }
    return;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const double time = r.f64();
    const auto kind = static_cast<TraceEventKind>(r.i32());
    const workload::JobId job = r.i64();
    const int procs = r.i32();
    const double detail = r.f64();
    trace_->record(time, kind, job, procs, detail);
  }
}

}  // namespace es::sched
