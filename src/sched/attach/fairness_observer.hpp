// Attachment: multi-tenant fairness accounting — per-pool queueing-wait
// percentiles, backlogged time, service shares and Jain's fairness index,
// deposited into PerfStats::fairness at collect time.
//
// Integration scheme: every observed lifecycle event first advances a
// piecewise-constant integral — for each pool with pending batch demand,
// backlogged time accrues and the pool's running allocation integrates into
// a service integral — then applies the event's state change.  Satisfaction
// x_p = min(1, service_share_p / entitlement_p) over backlogged time only,
// so a pool is "unsatisfied" exactly when it waited while holding less than
// its weighted share; Jain's index over the x_p separates fair-share
// scheduling from FIFO under skewed demand.
//
// Wait samples are per *attempt*: a preempted-then-requeued job contributes
// a new wait from its requeue to its next start, which is precisely the
// delay tenants experience.  Dedicated jobs are excluded (their start time
// is user-mandated, not scheduler-controlled).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sched/attach/observer.hpp"
#include "sched/engine_config.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class FairnessObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kArrival) | hook_bit(Hook::kStart) |
      hook_bit(Hook::kFinish) | hook_bit(Hook::kPreempt) |
      hook_bit(Hook::kRequeue) | hook_bit(Hook::kAbandon) |
      hook_bit(Hook::kCollect);

  FairnessObserver(const FairShareConfig& config, int machine_procs);

  void on_arrival(sim::Time now, const JobRun& job) override;
  void on_start(sim::Time now, const JobRun& job, bool backfilled) override;
  void on_finish(sim::Time now, const JobRun& job) override;
  void on_preempt(sim::Time now, PreemptInfo& info) override;
  void on_requeue(sim::Time now, const JobRun& job, int alloc) override;
  void on_abandon(sim::Time now, const JobRun& job, int alloc) override;
  void on_collect(SimulationResult& result) const override;

  /// Ledger snapshot/restore (crash consistency).
  void save_state(snap::SnapshotWriter& w) const;
  void restore_state(snap::SnapshotReader& r);

 private:
  struct Waiting {
    int pool = 0;
    double since = 0;
  };

  void ensure_pool(int pool);
  /// Accrues backlog/service integrals up to `now`.
  void advance(sim::Time now);
  void mark_waiting(sim::Time now, const JobRun& job);
  double weight_of(std::size_t pool) const;

  FairShareConfig config_;
  int machine_procs_ = 1;

  bool clock_started_ = false;
  double last_time_ = 0;
  // Parallel per-pool arrays, lazily grown to the highest pool index seen.
  std::vector<std::uint32_t> pending_;         ///< waiting batch jobs
  std::vector<double> running_alloc_;          ///< processors held
  std::vector<double> backlogged_seconds_;
  std::vector<double> service_integral_;       ///< proc-seconds while backlogged
  std::vector<std::vector<double>> waits_;     ///< per-attempt queue delays
  /// Jobs currently waiting: id -> (pool, queue-entry time).  Bounded by
  /// queue depth; entries move out at start/abandon time.
  std::unordered_map<workload::JobId, Waiting> waiting_;
};

}  // namespace es::sched
