// Attachment: watchdog no-progress detection.
//
// Tracks job starts and finishes as the progress signal and trips the
// engine's AbortFlag (TerminationReason::kNoProgress) when the configured
// number of consecutive non-idle cycles passes without either.  The other
// watchdog budgets (events, sim time, wall clock) stay in sim::Watchdog —
// they meter the event loop itself, not scheduling progress.
#pragma once

#include <cstdint>

#include "sched/attach/observer.hpp"
#include "sim/watchdog.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class WatchdogProgressObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kStart) | hook_bit(Hook::kFinish) |
      hook_bit(Hook::kCycleEnd) | hook_bit(Hook::kParanoidCheck);

  WatchdogProgressObserver(const sim::WatchdogConfig& config, AbortFlag* abort)
      : config_(config), abort_(abort) {}

  void on_start(sim::Time now, const JobRun& job, bool backfilled) override;
  void on_finish(sim::Time now, const JobRun& job) override;
  void on_cycle_end(const CycleInfo& info) override;
  void on_paranoid_check(const ParanoidSnapshot& snapshot) const override;

  /// Progress-counter snapshot/restore: a restored run must resume the
  /// stall countdown where it left off, not reset it.
  void save_state(snap::SnapshotWriter& w) const {
    w.u64(starts_);
    w.u64(finishes_);
    w.u64(progress_marker_);
    w.i32(stalled_cycles_);
  }
  void restore_state(snap::SnapshotReader& r) {
    starts_ = r.u64();
    finishes_ = r.u64();
    progress_marker_ = r.u64();
    stalled_cycles_ = r.i32();
  }

 private:
  sim::WatchdogConfig config_;
  AbortFlag* abort_;
  std::uint64_t starts_ = 0;
  std::uint64_t finishes_ = 0;
  std::uint64_t progress_marker_ = 0;  ///< starts_ + finishes_ at the last
                                       ///< cycle that made progress
  int stalled_cycles_ = 0;
};

}  // namespace es::sched
