// Attachment: watchdog no-progress detection.
//
// Tracks job starts and finishes as the progress signal and trips the
// engine's AbortFlag (TerminationReason::kNoProgress) when the configured
// number of consecutive non-idle cycles passes without either.  The other
// watchdog budgets (events, sim time, wall clock) stay in sim::Watchdog —
// they meter the event loop itself, not scheduling progress.
#pragma once

#include <cstdint>

#include "sched/attach/observer.hpp"
#include "sim/watchdog.hpp"

namespace es::sched {

class WatchdogProgressObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kStart) | hook_bit(Hook::kFinish) |
      hook_bit(Hook::kCycleEnd) | hook_bit(Hook::kParanoidCheck);

  WatchdogProgressObserver(const sim::WatchdogConfig& config, AbortFlag* abort)
      : config_(config), abort_(abort) {}

  void on_start(sim::Time now, const JobRun& job, bool backfilled) override;
  void on_finish(sim::Time now, const JobRun& job) override;
  void on_cycle_end(const CycleInfo& info) override;
  void on_paranoid_check(const ParanoidSnapshot& snapshot) const override;

 private:
  sim::WatchdogConfig config_;
  AbortFlag* abort_;
  std::uint64_t starts_ = 0;
  std::uint64_t finishes_ = 0;
  std::uint64_t progress_marker_ = 0;  ///< starts_ + finishes_ at the last
                                       ///< cycle that made progress
  int stalled_cycles_ = 0;
};

}  // namespace es::sched
