#include "sched/attach/cycle_stats_observer.hpp"

#include "sched/metrics.hpp"
#include "util/check.hpp"

namespace es::sched {

void CycleStatsObserver::on_cycle_begin(const CycleInfo& info) {
  const std::uint64_t depth = info.batch_depth;
  ++stats_.queue_depth[CycleStats::bucket_of(depth)];
  if (depth > stats_.max_queue_depth) stats_.max_queue_depth = depth;
}

void CycleStatsObserver::on_cycle_end(const CycleInfo& info) {
  (void)info;
  ++stats_.cycles;
  const std::uint64_t calls = policy_->dp_counters().calls;
  ++stats_.dp_calls[CycleStats::bucket_of(calls - last_dp_calls_)];
  last_dp_calls_ = calls;
}

void CycleStatsObserver::on_start(sim::Time now, const JobRun& job,
                                  bool backfilled) {
  (void)now;
  (void)job;
  ++stats_.starts;
  if (backfilled) ++stats_.backfill_starts;
}

void CycleStatsObserver::on_collect(SimulationResult& result) const {
  result.perf.cycle = stats_;
}

void CycleStatsObserver::save_state(snap::SnapshotWriter& w) const {
  const std::uint64_t calls = policy_->dp_counters().calls;
  w.u64(calls - baseline_dp_calls_);
  w.u64(calls - last_dp_calls_);
  w.u64(stats_.cycles);
  w.u64(stats_.starts);
  w.u64(stats_.backfill_starts);
  w.u64(stats_.max_queue_depth);
  for (int b = 0; b < CycleStats::kBuckets; ++b) w.u64(stats_.queue_depth[b]);
  for (int b = 0; b < CycleStats::kBuckets; ++b) w.u64(stats_.dp_calls[b]);
}

void CycleStatsObserver::restore_state(snap::SnapshotReader& r) {
  const std::uint64_t calls = policy_->dp_counters().calls;
  baseline_dp_calls_ = calls - r.u64();
  last_dp_calls_ = calls - r.u64();
  stats_.cycles = r.u64();
  stats_.starts = r.u64();
  stats_.backfill_starts = r.u64();
  stats_.max_queue_depth = r.u64();
  for (int b = 0; b < CycleStats::kBuckets; ++b) stats_.queue_depth[b] = r.u64();
  for (int b = 0; b < CycleStats::kBuckets; ++b) stats_.dp_calls[b] = r.u64();
}

void CycleStatsObserver::on_paranoid_check(
    const ParanoidSnapshot& snapshot) const {
  // Cycle hooks always pair, every cycle lands in exactly one bucket of
  // each histogram, and the per-cycle DP deltas must telescope to the
  // run-level delta the engine reports.
  ES_ASSERT_MSG(stats_.cycles == snapshot.cycles,
                "t=%.3f cycle=%llu observed=%llu recomputed=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(stats_.cycles),
                static_cast<unsigned long long>(snapshot.cycles));
  std::uint64_t depth_sum = 0, dp_sum = 0;
  for (int b = 0; b < CycleStats::kBuckets; ++b) {
    depth_sum += stats_.queue_depth[b];
    dp_sum += stats_.dp_calls[b];
  }
  ES_ASSERT_MSG(depth_sum == stats_.cycles && dp_sum == stats_.cycles,
                "t=%.3f cycle=%llu depth_sum=%llu dp_sum=%llu cycles=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(depth_sum),
                static_cast<unsigned long long>(dp_sum),
                static_cast<unsigned long long>(stats_.cycles));
  ES_ASSERT_MSG(last_dp_calls_ - baseline_dp_calls_ == snapshot.dp_delta.calls,
                "t=%.3f cycle=%llu delta=%llu run_delta=%llu", snapshot.now,
                static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(last_dp_calls_ -
                                                baseline_dp_calls_),
                static_cast<unsigned long long>(snapshot.dp_delta.calls));
}

}  // namespace es::sched
