// Attachment: failure accounting — outages, interruptions, requeues,
// abandonments, lost and wasted work.
//
// Owns exactly the FailureStats fields the failure path produces; the
// checkpoint fields of the same struct belong to CheckpointObserver, and
// goodput / final wasted-work additions to collect()'s per-job loop.  Each
// writer deposits only its own fields, so the merged result is identical
// to the old single-ledger engine field by field.
#pragma once

#include <cstdint>

#include "sched/attach/observer.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class FailureStatsObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kNodeDown) | hook_bit(Hook::kPreempt) |
      hook_bit(Hook::kRequeue) | hook_bit(Hook::kAbandon) |
      hook_bit(Hook::kCollect) | hook_bit(Hook::kParanoidCheck);

  void on_node_down(sim::Time now, int procs) override;
  void on_preempt(sim::Time now, PreemptInfo& info) override;
  void on_requeue(sim::Time now, const JobRun& job, int alloc) override;
  void on_abandon(sim::Time now, const JobRun& job, int alloc) override;
  void on_collect(SimulationResult& result) const override;
  void on_paranoid_check(const ParanoidSnapshot& snapshot) const override;

  /// Ledger snapshot/restore.
  void save_state(snap::SnapshotWriter& w) const {
    w.u64(outages_);
    w.u64(interruptions_);
    w.u64(requeues_);
    w.u64(abandoned_);
    w.f64(lost_proc_seconds_);
    w.f64(wasted_proc_seconds_);
  }
  void restore_state(snap::SnapshotReader& r) {
    outages_ = r.u64();
    interruptions_ = r.u64();
    requeues_ = r.u64();
    abandoned_ = r.u64();
    lost_proc_seconds_ = r.f64();
    wasted_proc_seconds_ = r.f64();
  }

 private:
  std::uint64_t outages_ = 0;
  std::uint64_t interruptions_ = 0;
  std::uint64_t requeues_ = 0;
  std::uint64_t abandoned_ = 0;
  double lost_proc_seconds_ = 0;
  double wasted_proc_seconds_ = 0;
};

}  // namespace es::sched
