// Attachment: full schedule audit trace (sched/trace.hpp).
//
// Records one TraceEvent per lifecycle site and hands the trace to the
// result at collect time.  The only attachment that allocates — at
// construction (the shared trace) and per recorded event — which is why it
// stays off unless EngineConfig::record_trace asks for it.
#pragma once

#include <memory>

#include "sched/attach/observer.hpp"
#include "sched/trace.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class TraceObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kArrival) | hook_bit(Hook::kStart) |
      hook_bit(Hook::kFinish) | hook_bit(Hook::kEccApplied) |
      hook_bit(Hook::kNodeDown) | hook_bit(Hook::kNodeUp) |
      hook_bit(Hook::kPreempt) | hook_bit(Hook::kRequeue) |
      hook_bit(Hook::kAbandon) | hook_bit(Hook::kDedicatedMove) |
      hook_bit(Hook::kCollect);

  /// Allocates the trace only when enabled; a disabled instance is inert.
  explicit TraceObserver(bool enabled) {
    if (enabled) trace_ = std::make_shared<ScheduleTrace>();
  }

  const std::shared_ptr<ScheduleTrace>& trace() const { return trace_; }

  void on_arrival(sim::Time now, const JobRun& job) override;
  void on_start(sim::Time now, const JobRun& job, bool backfilled) override;
  void on_finish(sim::Time now, const JobRun& job) override;
  void on_ecc_applied(sim::Time now, const JobRun& job,
                      const workload::Ecc& ecc, EccOutcome outcome) override;
  void on_node_down(sim::Time now, int procs) override;
  void on_node_up(sim::Time now, int procs) override;
  void on_preempt(sim::Time now, PreemptInfo& info) override;
  void on_requeue(sim::Time now, const JobRun& job, int alloc) override;
  void on_abandon(sim::Time now, const JobRun& job, int alloc) override;
  void on_dedicated_move(sim::Time now, const JobRun& job) override;
  void on_collect(SimulationResult& result) const override;

  /// Serializes the accumulated trace (the "tail" the resumed run appends
  /// to).  A disabled instance writes an empty event list.
  void save_state(snap::SnapshotWriter& w) const;
  void restore_state(snap::SnapshotReader& r);

 private:
  std::shared_ptr<ScheduleTrace> trace_;  ///< null when disabled
};

}  // namespace es::sched
