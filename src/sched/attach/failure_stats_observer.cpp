#include "sched/attach/failure_stats_observer.hpp"

#include "sched/metrics.hpp"
#include "util/check.hpp"

namespace es::sched {

void FailureStatsObserver::on_node_down(sim::Time now, int procs) {
  (void)now;
  (void)procs;
  ++outages_;
}

void FailureStatsObserver::on_preempt(sim::Time now, PreemptInfo& info) {
  (void)now;
  ++interruptions_;
  // The unsaved part of the attempt is lost; with no CheckpointObserver
  // ahead of us info.saved is 0 and this is the full partial run.
  info.lost = static_cast<double>(info.job->alloc) *
              (info.elapsed - info.saved);
  lost_proc_seconds_ += info.lost;
  // A requeued job restarts from its checkpoint (or from scratch without
  // one), so the unsaved part of its partial run is wasted work here and
  // now; an abandoned job's partial run is accounted by collect().
  if (info.policy != fault::RequeuePolicy::kAbandon)
    wasted_proc_seconds_ += info.lost;
}

void FailureStatsObserver::on_requeue(sim::Time now, const JobRun& job,
                                      int alloc) {
  (void)now;
  (void)job;
  (void)alloc;
  ++requeues_;
}

void FailureStatsObserver::on_abandon(sim::Time now, const JobRun& job,
                                      int alloc) {
  (void)now;
  (void)job;
  (void)alloc;
  ++abandoned_;
}

void FailureStatsObserver::on_collect(SimulationResult& result) const {
  result.failure.outages = outages_;
  result.failure.interruptions = interruptions_;
  result.failure.requeues = requeues_;
  result.failure.abandoned = abandoned_;
  result.failure.lost_proc_seconds = lost_proc_seconds_;
  result.failure.wasted_proc_seconds = wasted_proc_seconds_;
}

void FailureStatsObserver::on_paranoid_check(
    const ParanoidSnapshot& snapshot) const {
  // Every preemption bumped exactly one job's interruption count, every
  // interruption ended in a requeue or an abandonment, and every
  // abandonment parked the job in the finished set.
  ES_ASSERT_MSG(interruptions_ == snapshot.interruptions,
                "t=%.3f cycle=%llu observed=%llu recomputed=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(interruptions_),
                static_cast<unsigned long long>(snapshot.interruptions));
  ES_ASSERT_MSG(abandoned_ == snapshot.abandoned,
                "t=%.3f cycle=%llu observed=%llu recomputed=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(abandoned_),
                static_cast<unsigned long long>(snapshot.abandoned));
  ES_ASSERT_MSG(requeues_ + abandoned_ == interruptions_,
                "t=%.3f cycle=%llu requeues=%llu abandoned=%llu "
                "interruptions=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(requeues_),
                static_cast<unsigned long long>(abandoned_),
                static_cast<unsigned long long>(interruptions_));
}

}  // namespace es::sched
