#include "sched/attach/checkpoint_observer.hpp"

#include <algorithm>

#include "sched/metrics.hpp"

namespace es::sched {

void CheckpointObserver::on_checkpoint_replan(JobRun& job) {
  // An ECC that moved the job's time bounds (or a fresh start) changes how
  // many periodic checkpoints the rest of the attempt will take; re-plan
  // before the finish event is (re)inserted so duration formulas stay
  // coherent.
  job.ckpt_overhead_planned = model_.planned_overhead(job.remaining_work());
}

void CheckpointObserver::on_preempt(sim::Time now, PreemptInfo& info) {
  (void)now;
  JobRun* job = info.job;
  // A requeued job resumes from its last checkpoint, so the work banked
  // there is saved rather than lost.  Abandoned jobs bank nothing — their
  // checkpoints are never restored from.
  if (info.policy != fault::RequeuePolicy::kAbandon) {
    info.saved =
        std::min(model_.banked_work(info.elapsed), job->remaining_work());
    std::uint64_t taken =
        static_cast<std::uint64_t>(model_.completed_count(info.elapsed));
    if (model_.config().on_preempt) ++taken;
    checkpoints_ += taken;
    overhead_proc_seconds_ +=
        static_cast<double>(job->alloc) * model_.overhead_spent(info.elapsed);
    saved_proc_seconds_ += static_cast<double>(job->alloc) * info.saved;
    job->ckpt_progress += info.saved;
  }
  job->ckpt_overhead_planned = 0;  // re-planned at the next start
}

void CheckpointObserver::on_finish(sim::Time now, const JobRun& job) {
  (void)now;
  // The attempt ran to completion, so every planned periodic checkpoint
  // was taken and its overhead paid on the job's full allocation.
  checkpoints_ +=
      static_cast<std::uint64_t>(model_.periodic_count(job.remaining_work()));
  overhead_proc_seconds_ +=
      static_cast<double>(job.alloc) * job.ckpt_overhead_planned;
}

void CheckpointObserver::on_collect(SimulationResult& result) const {
  result.failure.checkpoints = checkpoints_;
  result.failure.checkpoint_overhead_proc_seconds = overhead_proc_seconds_;
  result.failure.saved_proc_seconds = saved_proc_seconds_;
}

}  // namespace es::sched
