// Attachment: per-cycle shape statistics (the bus's proof of openness —
// added without touching a single engine lifecycle site).
//
// Collects log2-bucketed histograms of batch-queue depth at cycle begin
// and DP kernel invocations per cycle, plus start/backfill tallies, into
// PerfStats::cycle.  Everything is a fixed-size POD tally — no heap, no
// influence on the schedule — surfaced by `simrun --perf-report` when
// EngineConfig::collect_cycle_stats is set.
#pragma once

#include <cstdint>

#include "sched/attach/observer.hpp"
#include "sched/scheduler.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class CycleStatsObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kCycleBegin) | hook_bit(Hook::kCycleEnd) |
      hook_bit(Hook::kStart) | hook_bit(Hook::kCollect) |
      hook_bit(Hook::kParanoidCheck);

  /// Reads the policy's cumulative DP counters directly; the baseline is
  /// snapshotted here so per-cycle deltas work on reused policies.
  explicit CycleStatsObserver(const Scheduler& policy)
      : policy_(&policy),
        baseline_dp_calls_(policy.dp_counters().calls),
        last_dp_calls_(baseline_dp_calls_) {}

  const CycleStats& stats() const { return stats_; }

  void on_cycle_begin(const CycleInfo& info) override;
  void on_cycle_end(const CycleInfo& info) override;
  void on_start(sim::Time now, const JobRun& job, bool backfilled) override;
  void on_collect(SimulationResult& result) const override;
  void on_paranoid_check(const ParanoidSnapshot& snapshot) const override;

  /// Snapshot/restore.  The two DP markers reference the *policy's*
  /// cumulative counter, which resets on the fresh policy instance a
  /// restore builds — so they are serialized as deltas below the counter's
  /// save-time value and re-anchored against the fresh counter at restore
  /// (mod-2^64 wraparound keeps future subtractions exact).
  void save_state(snap::SnapshotWriter& w) const;
  void restore_state(snap::SnapshotReader& r);

 private:
  const Scheduler* policy_;
  std::uint64_t baseline_dp_calls_;
  std::uint64_t last_dp_calls_;
  CycleStats stats_;
};

}  // namespace es::sched
