// Attachment: checkpoint/restart recovery accounting and replanning.
//
// Owns the CheckpointModel and the checkpoint fields of FailureStats:
// checkpoints taken, overhead paid, work saved.  Also the only observer
// that writes job state — it banks saved work into JobRun::ckpt_progress
// at preemption and re-plans JobRun::ckpt_overhead_planned whenever the
// engine asks (start, ECC retiming) — which is why it must sit first in
// the chain: FailureStatsObserver reads PreemptInfo::saved when computing
// lost work.
#pragma once

#include <cstdint>

#include "fault/checkpoint.hpp"
#include "sched/attach/observer.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class CheckpointObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kCheckpointReplan) | hook_bit(Hook::kPreempt) |
      hook_bit(Hook::kFinish) | hook_bit(Hook::kCollect);

  explicit CheckpointObserver(const fault::CheckpointConfig& config)
      : model_(config) {}

  void on_checkpoint_replan(JobRun& job) override;
  void on_preempt(sim::Time now, PreemptInfo& info) override;
  void on_finish(sim::Time now, const JobRun& job) override;
  void on_collect(SimulationResult& result) const override;

  /// Ledger snapshot/restore (the model itself is pure config).
  void save_state(snap::SnapshotWriter& w) const {
    w.u64(checkpoints_);
    w.f64(overhead_proc_seconds_);
    w.f64(saved_proc_seconds_);
  }
  void restore_state(snap::SnapshotReader& r) {
    checkpoints_ = r.u64();
    overhead_proc_seconds_ = r.f64();
    saved_proc_seconds_ = r.f64();
  }

 private:
  fault::CheckpointModel model_;
  std::uint64_t checkpoints_ = 0;
  double overhead_proc_seconds_ = 0;
  double saved_proc_seconds_ = 0;
};

}  // namespace es::sched
