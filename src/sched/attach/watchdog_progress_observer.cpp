#include "sched/attach/watchdog_progress_observer.hpp"

#include "util/check.hpp"

namespace es::sched {

void WatchdogProgressObserver::on_start(sim::Time now, const JobRun& job,
                                        bool backfilled) {
  (void)now;
  (void)job;
  (void)backfilled;
  ++starts_;
}

void WatchdogProgressObserver::on_finish(sim::Time now, const JobRun& job) {
  (void)now;
  (void)job;
  ++finishes_;
}

void WatchdogProgressObserver::on_cycle_end(const CycleInfo& info) {
  // A cycle counts as progress when any job started or finished since the
  // last one, or when there is simply nothing waiting to schedule (idle
  // cycles are not a hang).  Everything else — arrivals piling up against
  // a wedged policy, ECC churn that never seats a job — increments the
  // stall counter until the abort flag trips.
  const std::uint64_t progress = starts_ + finishes_;
  if (progress != progress_marker_ ||
      (info.batch_depth == 0 && info.dedicated_depth == 0)) {
    progress_marker_ = progress;
    stalled_cycles_ = 0;
    return;
  }
  if (++stalled_cycles_ >= config_.no_progress_cycles) {
    abort_->requested = true;
    abort_->reason = sim::TerminationReason::kNoProgress;
  }
}

void WatchdogProgressObserver::on_paranoid_check(
    const ParanoidSnapshot& snapshot) const {
  // Every start ends in exactly one of: still running, a finish (natural,
  // killed or ECC-forced), or a preemption — so the progress counters must
  // re-derive from job state alone.
  ES_ASSERT_MSG(finishes_ == snapshot.finishes,
                "t=%.3f cycle=%llu observed=%llu recomputed=%llu",
                snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
                static_cast<unsigned long long>(finishes_),
                static_cast<unsigned long long>(snapshot.finishes));
  ES_ASSERT_MSG(
      starts_ == snapshot.finishes + snapshot.active_jobs +
                     snapshot.interruptions,
      "t=%.3f cycle=%llu starts=%llu finishes=%llu active=%zu "
      "interruptions=%llu",
      snapshot.now, static_cast<unsigned long long>(snapshot.cycle),
      static_cast<unsigned long long>(starts_),
      static_cast<unsigned long long>(snapshot.finishes),
      snapshot.active_jobs,
      static_cast<unsigned long long>(snapshot.interruptions));
}

}  // namespace es::sched
