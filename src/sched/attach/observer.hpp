// The engine's typed lifecycle event bus.
//
// The engine core does machine/queue/active-set mechanics only; every
// cross-cutting concern — audit tracing, failure accounting, checkpoint
// replanning, watchdog progress notes, ECC audits, cycle statistics —
// lives in an EngineObserver attached to the engine's AttachmentChain.
// The engine dispatches a typed callback at each lifecycle site and the
// observers accumulate whatever they care about, depositing it into the
// SimulationResult at collect time.
//
// Design rules (load-bearing for the equivalence gates):
//   * allocation-free dispatch: the chain is a fixed-capacity table of
//     non-owning pointers, filled once at engine construction — nothing on
//     the steady-state path allocates (es_sim_alloc_test proves it);
//   * per-hook subscriber lists: observers register with a HookMask of the
//     callbacks they override, so a lifecycle site only virtual-dispatches
//     to observers that actually listen there — an enabled chain costs
//     nothing at the sites it ignores;
//   * the default chain is empty: with no attachment enabled every hook
//     reduces to a loop over zero entries, keeping the fast path within
//     noise of the pre-bus engine;
//   * deterministic order: observers fire in registration order at every
//     site.  The engine registers the built-ins as Checkpoint ->
//     FailureStats -> EccAudit -> Trace -> WatchdogProgress -> CycleStats;
//     CheckpointObserver must precede FailureStatsObserver because the
//     preempt accounting reads PreemptInfo::saved (banked work) when
//     computing lost work, and FailureStatsObserver must precede
//     TraceObserver because the preempt trace record carries
//     PreemptInfo::lost;
//   * observers never mutate engine state.  The two deliberate exceptions
//     are the typed PreemptInfo scratch-pad and on_checkpoint_replan
//     (which re-plans JobRun::ckpt_overhead_planned before the engine
//     seats the job), plus AbortFlag for observers that can abort the run.
#pragma once

#include <cstdint>

#include "fault/failure_model.hpp"
#include "sched/ecc_processor.hpp"
#include "sched/job_state.hpp"
#include "sched/perf.hpp"
#include "sim/time.hpp"
#include "sim/watchdog.hpp"
#include "util/check.hpp"
#include "workload/job.hpp"

namespace es::sched {

struct SimulationResult;

/// Lifecycle hook identifiers, one per EngineObserver callback.  Observers
/// register on the chain with a mask of the hooks they override; dispatch
/// then never touches an observer at a site it does not observe.
enum class Hook : std::uint32_t {
  kCycleBegin = 0,
  kCycleEnd,
  kArrival,
  kStart,
  kFinish,
  kEccApplied,
  kEccUnknownJob,
  kNodeDown,
  kNodeUp,
  kPreempt,
  kRequeue,
  kAbandon,
  kDedicatedMove,
  kCheckpointReplan,
  kCollect,
  kParanoidCheck,
  kCount,
};

using HookMask = std::uint32_t;

constexpr HookMask hook_bit(Hook hook) {
  return HookMask{1} << static_cast<std::uint32_t>(hook);
}

/// Subscribe-to-everything mask, the safe default for external observers.
constexpr HookMask kAllHooks =
    (HookMask{1} << static_cast<std::uint32_t>(Hook::kCount)) - 1;

/// Snapshot of queue/active shape handed to cycle hooks.  Built only when
/// the chain is non-empty (every field is O(1) to read off the engine).
struct CycleInfo {
  sim::Time now = 0;
  std::uint64_t cycle = 0;        ///< 1-based cycle ordinal
  std::size_t batch_depth = 0;    ///< batch queue length (W^b)
  std::size_t dedicated_depth = 0;  ///< dedicated queue length (W^d)
  std::size_t active_jobs = 0;    ///< running jobs
};

/// Scratch-pad threaded through the preempt hook.  The engine fills the
/// identity fields; CheckpointObserver writes `saved` (work banked by the
/// last checkpoint); FailureStatsObserver writes `lost` (unsaved partial
/// work, in proc-seconds) which TraceObserver records.
struct PreemptInfo {
  JobRun* job = nullptr;
  double elapsed = 0;  ///< seconds the attempt ran before preemption
  fault::RequeuePolicy policy = fault::RequeuePolicy::kRequeueHead;
  double saved = 0;  ///< checkpoint-banked work (seconds of runtime)
  double lost = 0;   ///< unsaved partial work (proc-seconds)
};

/// From-scratch recomputation of everything the built-in observers
/// accumulate incrementally, built by the engine in paranoid mode after
/// every cycle so each attachment can cross-check its own ledger.
struct ParanoidSnapshot {
  sim::Time now = 0;
  std::uint64_t cycle = 0;
  std::uint64_t interruptions = 0;  ///< sum of JobRun::interruptions
  std::uint64_t abandoned = 0;      ///< finished jobs with kAbandoned
  std::uint64_t finishes = 0;       ///< finished jobs, abandonments excluded
  std::size_t active_jobs = 0;
  std::uint64_t cycles = 0;
  DpCounters dp_delta;  ///< policy counters minus the run-start baseline
  const EccStats* ecc = nullptr;  ///< the processor's own command ledger
};

/// Set by an observer to abort the run from inside the event loop (the
/// watchdog-progress attachment trips it); polled by the engine's stepping
/// pump.  Plain struct — the run is single-threaded.
struct AbortFlag {
  bool requested = false;
  sim::TerminationReason reason = sim::TerminationReason::kCompleted;
};

/// Lifecycle hooks.  Every callback defaults to a no-op so attachments
/// override only the sites they observe.  `job` references stay valid for
/// the whole run (the engine owns the JobRun storage).
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_cycle_begin(const CycleInfo& info) { (void)info; }
  virtual void on_cycle_end(const CycleInfo& info) { (void)info; }
  virtual void on_arrival(sim::Time now, const JobRun& job) {
    (void)now;
    (void)job;
  }
  /// `backfilled` marks a start that jumped past the batch-queue head.
  virtual void on_start(sim::Time now, const JobRun& job, bool backfilled) {
    (void)now;
    (void)job;
    (void)backfilled;
  }
  /// Fires for natural completions, kills and ECC-forced completions; the
  /// job's status distinguishes them.
  virtual void on_finish(sim::Time now, const JobRun& job) {
    (void)now;
    (void)job;
  }
  virtual void on_ecc_applied(sim::Time now, const JobRun& job,
                              const workload::Ecc& ecc, EccOutcome outcome) {
    (void)now;
    (void)job;
    (void)ecc;
    (void)outcome;
  }
  /// An ECC named a job id that is not in the workload.
  virtual void on_ecc_unknown_job(sim::Time now, const workload::Ecc& ecc) {
    (void)now;
    (void)ecc;
  }
  virtual void on_node_down(sim::Time now, int procs) {
    (void)now;
    (void)procs;
  }
  virtual void on_node_up(sim::Time now, int procs) {
    (void)now;
    (void)procs;
  }
  /// Fires after the victim left the machine/active set but before the
  /// requeue policy is applied; observers may fill PreemptInfo fields for
  /// observers later in the chain (see the ordering rules above).
  virtual void on_preempt(sim::Time now, PreemptInfo& info) {
    (void)now;
    (void)info;
  }
  /// `alloc` is the allocation the job held when preempted (JobRun::alloc
  /// is already reset by requeue time).
  virtual void on_requeue(sim::Time now, const JobRun& job, int alloc) {
    (void)now;
    (void)job;
    (void)alloc;
  }
  virtual void on_abandon(sim::Time now, const JobRun& job, int alloc) {
    (void)now;
    (void)job;
    (void)alloc;
  }
  virtual void on_dedicated_move(sim::Time now, const JobRun& job) {
    (void)now;
    (void)job;
  }
  /// The job's time bounds changed (start, ECC): re-plan per-attempt
  /// checkpoint overhead before the engine re-seats/reschedules it.
  virtual void on_checkpoint_replan(JobRun& job) { (void)job; }
  /// Deposit accumulated statistics into the result.  Runs after the
  /// engine fills the scalar fields and before the per-job outcome loop.
  virtual void on_collect(SimulationResult& result) const { (void)result; }
  /// Paranoid mode: cross-check incremental accumulators against the
  /// engine's from-scratch snapshot.  Assert on any divergence.
  virtual void on_paranoid_check(const ParanoidSnapshot& snapshot) const {
    (void)snapshot;
  }
};

/// Fixed-capacity, allocation-free dispatch chain.  The engine calls one
/// chain method per lifecycle site; the chain forwards to every observer
/// subscribed to that hook, in registration order.  Observers pass the
/// mask of hooks they override at add() time (external observers default
/// to kAllHooks), so no-op callbacks are never virtual-dispatched.
class AttachmentChain {
 public:
  static constexpr int kCapacity = 12;
  static constexpr int kHookCount = static_cast<int>(Hook::kCount);

  void add(EngineObserver* observer, HookMask mask = kAllHooks) {
    ES_EXPECTS(observer != nullptr);
    ES_EXPECTS(count_ < kCapacity);
    ++count_;
    for (int h = 0; h < kHookCount; ++h)
      if (mask & (HookMask{1} << h)) items_[h][counts_[h]++] = observer;
  }
  bool empty() const { return count_ == 0; }
  int size() const { return count_; }
  /// True when at least one observer subscribed to `hook` — lets the
  /// engine skip building hook arguments nobody will read.
  bool has(Hook hook) const {
    return counts_[static_cast<int>(hook)] != 0;
  }

  void on_cycle_begin(const CycleInfo& info) {
    for (int i = 0; i < counts_[idx(Hook::kCycleBegin)]; ++i)
      items_[idx(Hook::kCycleBegin)][i]->on_cycle_begin(info);
  }
  void on_cycle_end(const CycleInfo& info) {
    for (int i = 0; i < counts_[idx(Hook::kCycleEnd)]; ++i)
      items_[idx(Hook::kCycleEnd)][i]->on_cycle_end(info);
  }
  void on_arrival(sim::Time now, const JobRun& job) {
    for (int i = 0; i < counts_[idx(Hook::kArrival)]; ++i)
      items_[idx(Hook::kArrival)][i]->on_arrival(now, job);
  }
  void on_start(sim::Time now, const JobRun& job, bool backfilled) {
    for (int i = 0; i < counts_[idx(Hook::kStart)]; ++i)
      items_[idx(Hook::kStart)][i]->on_start(now, job, backfilled);
  }
  void on_finish(sim::Time now, const JobRun& job) {
    for (int i = 0; i < counts_[idx(Hook::kFinish)]; ++i)
      items_[idx(Hook::kFinish)][i]->on_finish(now, job);
  }
  void on_ecc_applied(sim::Time now, const JobRun& job,
                      const workload::Ecc& ecc, EccOutcome outcome) {
    for (int i = 0; i < counts_[idx(Hook::kEccApplied)]; ++i)
      items_[idx(Hook::kEccApplied)][i]->on_ecc_applied(now, job, ecc,
                                                        outcome);
  }
  void on_ecc_unknown_job(sim::Time now, const workload::Ecc& ecc) {
    for (int i = 0; i < counts_[idx(Hook::kEccUnknownJob)]; ++i)
      items_[idx(Hook::kEccUnknownJob)][i]->on_ecc_unknown_job(now, ecc);
  }
  void on_node_down(sim::Time now, int procs) {
    for (int i = 0; i < counts_[idx(Hook::kNodeDown)]; ++i)
      items_[idx(Hook::kNodeDown)][i]->on_node_down(now, procs);
  }
  void on_node_up(sim::Time now, int procs) {
    for (int i = 0; i < counts_[idx(Hook::kNodeUp)]; ++i)
      items_[idx(Hook::kNodeUp)][i]->on_node_up(now, procs);
  }
  void on_preempt(sim::Time now, PreemptInfo& info) {
    for (int i = 0; i < counts_[idx(Hook::kPreempt)]; ++i)
      items_[idx(Hook::kPreempt)][i]->on_preempt(now, info);
  }
  void on_requeue(sim::Time now, const JobRun& job, int alloc) {
    for (int i = 0; i < counts_[idx(Hook::kRequeue)]; ++i)
      items_[idx(Hook::kRequeue)][i]->on_requeue(now, job, alloc);
  }
  void on_abandon(sim::Time now, const JobRun& job, int alloc) {
    for (int i = 0; i < counts_[idx(Hook::kAbandon)]; ++i)
      items_[idx(Hook::kAbandon)][i]->on_abandon(now, job, alloc);
  }
  void on_dedicated_move(sim::Time now, const JobRun& job) {
    for (int i = 0; i < counts_[idx(Hook::kDedicatedMove)]; ++i)
      items_[idx(Hook::kDedicatedMove)][i]->on_dedicated_move(now, job);
  }
  void on_checkpoint_replan(JobRun& job) {
    for (int i = 0; i < counts_[idx(Hook::kCheckpointReplan)]; ++i)
      items_[idx(Hook::kCheckpointReplan)][i]->on_checkpoint_replan(job);
  }
  void on_collect(SimulationResult& result) const {
    for (int i = 0; i < counts_[idx(Hook::kCollect)]; ++i)
      items_[idx(Hook::kCollect)][i]->on_collect(result);
  }
  void on_paranoid_check(const ParanoidSnapshot& snapshot) const {
    for (int i = 0; i < counts_[idx(Hook::kParanoidCheck)]; ++i)
      items_[idx(Hook::kParanoidCheck)][i]->on_paranoid_check(snapshot);
  }

 private:
  static constexpr int idx(Hook hook) { return static_cast<int>(hook); }

  EngineObserver* items_[kHookCount][kCapacity] = {};
  int counts_[kHookCount] = {};
  int count_ = 0;
};

}  // namespace es::sched
