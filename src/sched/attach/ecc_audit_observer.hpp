// Attachment: ECC skip auditing.
//
// Counts (and warns about) elastic control commands naming job ids that
// are not in the workload — the hardened-ingestion skip counter — and, in
// paranoid mode, cross-checks the EccProcessor's command ledger against an
// independent tally of the outcomes the engine dispatched.
#pragma once

#include <cstdint>

#include "sched/attach/observer.hpp"
#include "snap/snapshot.hpp"

namespace es::sched {

class EccAuditObserver final : public EngineObserver {
 public:
  /// Hooks this observer overrides; keep in sync with the override list.
  static constexpr HookMask kHookMask =
      hook_bit(Hook::kEccApplied) | hook_bit(Hook::kEccUnknownJob) |
      hook_bit(Hook::kCollect) | hook_bit(Hook::kParanoidCheck);

  void on_ecc_applied(sim::Time now, const JobRun& job,
                      const workload::Ecc& ecc, EccOutcome outcome) override;
  void on_ecc_unknown_job(sim::Time now, const workload::Ecc& ecc) override;
  void on_collect(SimulationResult& result) const override;
  void on_paranoid_check(const ParanoidSnapshot& snapshot) const override;

  /// Ledger snapshot/restore.
  void save_state(snap::SnapshotWriter& w) const {
    w.u64(unknown_);
    w.u64(dispatched_);
    w.u64(rejected_);
    w.u64(conflicts_);
  }
  void restore_state(snap::SnapshotReader& r) {
    unknown_ = r.u64();
    dispatched_ = r.u64();
    rejected_ = r.u64();
    conflicts_ = r.u64();
  }

 private:
  std::uint64_t unknown_ = 0;     ///< commands skipped: job id not found
  std::uint64_t dispatched_ = 0;  ///< commands the processor applied
  std::uint64_t rejected_ = 0;    ///< dispatches with a kRejected* outcome
  std::uint64_t conflicts_ = 0;   ///< same-instant contradictory/duplicate
                                  ///< commands the conflict shield skipped
};

}  // namespace es::sched
