#include "sched/reservation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace es::sched {

sim::Time planned_end(const JobRun& job) {
  ES_EXPECTS(job.status == JobStatus::kRunning);
  // Estimate basis, checkpoint-aware: a resumed job only owes the work not
  // yet banked by its checkpoints.
  return job.start_time + job.estimated_duration();
}

double planned_residual(const JobRun& job, sim::Time now) {
  const sim::Time end = planned_end(job);
  return end > now ? end - now : 0.0;
}

Freeze shadow_for_blocked(const SchedulerContext& ctx, int need_procs) {
  const int m = ctx.free();
  ES_EXPECTS(need_procs > m);
  // Under fault injection the bound is the *in-service* capacity: no chain
  // of completions can release offline processors, so callers must not ask
  // for a shadow the degraded machine cannot host (they skip the
  // reservation until repair instead).
  ES_EXPECTS(need_procs <= ctx.machine->available());
  Freeze freeze;
  freeze.active = true;
  int available = m;
  // Active snapshot is sorted ascending by residual; accumulate releases
  // until the need fits (Algorithm 1 line 13).
  for (const JobRun* active : *ctx.active) {
    available += active->alloc;
    if (available >= need_procs) {
      freeze.fret = ctx.now + planned_residual(*active, ctx.now);
      freeze.frec = available - need_procs;
      return freeze;
    }
  }
  // Unreachable when the ledger is consistent: free + sum(active allocs)
  // equals the in-service capacity which bounds any request.
  ES_ASSERT(false);
  return freeze;
}

Freeze dedicated_freeze(const SchedulerContext& ctx) {
  const JobRun* head = ctx.dedicated_head();
  ES_EXPECTS(head != nullptr);
  ES_EXPECTS(head->req_start > ctx.now);
  // Plan against the in-service capacity: the scheduler cannot know when
  // offline processors will be repaired, so it books the dedicated group
  // out of what exists right now (conservative under fault injection;
  // identical to total() on a healthy machine).
  const int total = ctx.machine->available();

  Freeze freeze;
  freeze.active = true;
  freeze.fret = head->req_start;

  // Free capacity at the requested start time: processors not held by
  // active jobs whose (estimated) residual extends to or beyond it
  // (Algorithm 2 lines 10-14; a job ending exactly at the start instant is
  // conservatively treated as still occupying, matching the paper's "<=").
  int capacity_at_start = total;
  for (const JobRun* active : *ctx.active) {
    if (ctx.now + planned_residual(*active, ctx.now) >= head->req_start)
      capacity_at_start -= active->alloc;
  }

  // The whole group of dedicated jobs sharing the head's start time must be
  // hosted together (lines 16-17).
  int group_need = 0;
  for (const JobRun* job : *ctx.dedicated) {
    if (job->req_start == head->req_start) group_need += ctx.alloc_of(*job);
  }
  group_need = std::min(group_need, total);

  if (group_need <= capacity_at_start) {
    freeze.frec = capacity_at_start - group_need;
    return freeze;
  }

  // Insufficient capacity at the requested start: the group is delayed to
  // the earliest instant enough processors free up (lines 24-26).
  int available = ctx.free();
  if (available >= group_need) {
    // The group would fit right now but not at its start time: some running
    // jobs end after the start.  The freeze then binds at the start time
    // with whatever is free there.
    freeze.frec = std::max(capacity_at_start, 0);
    return freeze;
  }
  for (const JobRun* active : *ctx.active) {
    available += active->alloc;
    if (available >= group_need) {
      freeze.fret = std::max<sim::Time>(
          head->req_start, ctx.now + planned_residual(*active, ctx.now));
      freeze.frec = available - group_need;
      return freeze;
    }
  }
  ES_ASSERT(false);
  return freeze;
}

bool respects(const Freeze& freeze, sim::Time now, const JobRun& job,
              int job_alloc) {
  if (!freeze.active) return true;
  if (now + job.req_time < freeze.fret) return true;
  return job_alloc <= freeze.frec;
}

void consume(Freeze& freeze, sim::Time now, const JobRun& job,
             int job_alloc) {
  if (!freeze.active) return;
  if (now + job.req_time < freeze.fret) return;
  // Clamp at zero: a forced-priority start (due dedicated job) may
  // legitimately overdraw the shadow capacity; later candidates then see an
  // exhausted freeze.
  freeze.frec = std::max(0, freeze.frec - job_alloc);
}

}  // namespace es::sched
