// Declarative registration of every EngineConfig field (and its nested
// failure/checkpoint/watchdog/snapshot/fairshare sub-configs) with the
// util::ParamRegistry.  One registration drives the config-file loader,
// --dump-config / --list-params generation, finalize-time validation, and
// the snapshot run fingerprint — see docs/architecture.md, "configuration
// spine".
#pragma once

#include "sched/engine_config.hpp"
#include "util/param_registry.hpp"

namespace es::sched {

/// Registers all EngineConfig parameters against `config`'s live storage.
/// The registry must not outlive `config`.  Includes the dynamic
/// `pool.<name>.weight` / `pool.<name>.min_share` family bound to
/// `config.fairshare.pools`, and the cross-field rules (granularity vs
/// machine size, allow_running_resize requires process_eccs, failure node
/// range, checkpoint interval, pool min-share budget).
void register_engine_params(util::ParamRegistry& registry,
                            EngineConfig& config);

}  // namespace es::sched
