// The one engine configuration struct — the single source of truth for
// every attachment knob, embedded verbatim by core::AlgorithmOptions and
// flowing unchanged through factory -> experiment -> simrun/bench.
//
// Kept separate from engine.hpp so config consumers (the factory, the
// experiment driver, CLI option parsing) can describe a run without
// pulling in the engine, the scheduler interface or the event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "fault/checkpoint.hpp"
#include "fault/failure_model.hpp"
#include "sim/watchdog.hpp"

namespace es::sched {

/// Crash-consistency: periodic engine snapshots during the run.  Disabled
/// by default (zero `every_cycles`), which keeps the event pump on the
/// exact seed fast path.  Deliberately *excluded* from the restore
/// fingerprint — a resumed run may snapshot on a different cadence (or not
/// at all) without being a different simulation.
struct SnapshotPolicy {
  /// Serialize the full engine state every N scheduling cycles (0 = off).
  std::uint64_t every_cycles = 0;
  /// Snapshot-ring directory; empty = no disk ring (an in-memory sink
  /// registered via Engine::set_snapshot_sink still receives snapshots).
  std::string dir;
  /// Ring retention: newest K generations are kept on disk.
  std::size_t keep = 3;
};

struct EngineConfig {
  int machine_procs = 320;
  int granularity = 32;
  /// Process ECCs (the -E algorithm variants).  When false, ECCs in the
  /// workload are ignored and jobs keep their submitted requirements.
  /// The factory path derives this from the algorithm name suffix.
  bool process_eccs = false;
  /// Allow EP/RP to resize *running* jobs work-conservingly (the paper's
  /// section-VI resource-elasticity extension).  Requires process_eccs.
  bool allow_running_resize = false;
  /// Record the busy-processor timeline (needed by utilization metrics and
  /// capacity-invariant tests; cheap, on by default).
  bool keep_job_outcomes = true;
  /// Order pending events through the two-tier calendar band (PR 9) instead
  /// of the plain binary heap.  Both structures realize the same strict
  /// (time, class, seq) order, so results are byte-identical either way;
  /// the switch exists for differential tests and before/after benchmarks.
  bool calendar_event_queue = true;
  /// Precompute the next cycle's DP table on the worker pool while the
  /// event queue drains (speculative cycle pipelining).  Pure cache
  /// warming keyed on the exact DP inputs — selections never change, only
  /// where they were computed.  Requires global parallelism > 1 to do
  /// anything.
  bool speculative_dp = true;
  /// Attach a TraceObserver recording a full schedule audit trace
  /// (sched/trace.hpp) to the result.  Off by default — it grows with the
  /// event count.
  bool record_trace = false;
  /// Attach a CycleStatsObserver collecting per-cycle queue-depth /
  /// backfill / DP-invocation histograms into PerfStats (surfaced by
  /// `simrun --perf-report`).  Off by default.
  bool collect_cycle_stats = false;
  /// Re-verify structural invariants (ledger consistency, queue ordering,
  /// status coherence) after every scheduling cycle, and cross-check every
  /// attachment's accumulated stats against a from-scratch recomputation.
  /// O(jobs) per cycle; used by the test suite and for debugging new
  /// policies or observers.
  bool paranoid = false;
  /// Fault injection: when `failure.enabled`, NodeDown/NodeUp events shrink
  /// and restore machine capacity during the run (default: off, which keeps
  /// every result bit-identical to the failure-free engine).
  fault::FailureModelConfig failure;
  /// What happens to running jobs preempted when capacity is lost.
  fault::RequeuePolicy requeue = fault::RequeuePolicy::kRequeueHead;
  /// Checkpoint/restart recovery: when enabled, preempted-then-requeued
  /// jobs resume from their last checkpoint (remaining = runtime - banked)
  /// instead of restarting from scratch, at the cost of periodic checkpoint
  /// overhead.  Default: disabled, byte-identical to the seed engine.
  fault::CheckpointConfig checkpoint;
  /// Termination guardrails: event / sim-time / wall-clock budgets plus a
  /// no-progress detector.  When any budget trips, the run aborts
  /// gracefully and the result carries partial metrics tagged with a typed
  /// TerminationReason.  Default: disabled (the exact seed event loop).
  sim::WatchdogConfig watchdog;
  /// Periodic crash-consistent snapshots (see SnapshotPolicy).  Default:
  /// disabled.
  SnapshotPolicy snapshot;
};

}  // namespace es::sched
