// The one engine configuration struct — the single source of truth for
// every attachment knob, embedded verbatim by core::AlgorithmOptions and
// flowing unchanged through factory -> experiment -> simrun/bench.
//
// Kept separate from engine.hpp so config consumers (the factory, the
// experiment driver, CLI option parsing) can describe a run without
// pulling in the engine, the scheduler interface or the event kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/failure_model.hpp"
#include "sim/watchdog.hpp"

namespace es::sched {

/// One scheduling pool in the fair-share tree (flat list of siblings under
/// an implicit root; jobs carry a pool index into this list).  Pools beyond
/// this list (from job tags) default to weight 1, min_share 0.
struct FairSharePool {
  std::string name;
  /// Relative fair-share weight; entitlement = weight / sum(weights).
  double weight = 1.0;
  /// Guaranteed fraction of the machine [0, 1].  A pool running below its
  /// min share with pending demand starves on the (short) min-share timeout.
  double min_share = 0.0;
};

/// Knobs for the FairShare policy family and the FairnessObserver.
/// Modelled on the ytsaurus fair-share strategy: starvation below min-share
/// or below tolerance×fair-share triggers preemption of jobs from
/// over-share pools after the corresponding timeout.
struct FairShareConfig {
  /// Master switch for starvation-driven preemption.  Off = FairShare only
  /// reorders the queue (still fair-share weighted, never interrupts work).
  bool preemption_enabled = true;
  /// Seconds a pool may run below its min share (with pending demand)
  /// before the scheduler preempts on its behalf.
  double min_share_preemption_timeout = 300.0;
  /// Seconds a pool may run below tolerance × fair share before preemption.
  double fair_share_preemption_timeout = 1800.0;
  /// Fraction of the fair share below which a pool counts as starving.
  double fair_share_starvation_tolerance = 0.8;
  /// Per-job ceiling on policy-initiated preemptions (0 = unlimited);
  /// bounds thrash on jobs that keep getting displaced.
  int max_preemptions_per_job = 4;
  /// Attach the FairnessObserver (per-pool wait percentiles + Jain index
  /// into PerfStats).  Off by default — fairness accounting costs a queue
  /// walk per lifecycle event.
  bool collect_stats = false;
  /// The pool tree (flat).  Empty = single implicit pool 0, weight 1.
  std::vector<FairSharePool> pools;
};

/// Crash-consistency: periodic engine snapshots during the run.  Disabled
/// by default (zero `every_cycles`), which keeps the event pump on the
/// exact seed fast path.  Deliberately *excluded* from the restore
/// fingerprint — a resumed run may snapshot on a different cadence (or not
/// at all) without being a different simulation.
struct SnapshotPolicy {
  /// Serialize the full engine state every N scheduling cycles (0 = off).
  std::uint64_t every_cycles = 0;
  /// Snapshot-ring directory; empty = no disk ring (an in-memory sink
  /// registered via Engine::set_snapshot_sink still receives snapshots).
  std::string dir;
  /// Ring retention: newest K generations are kept on disk.
  std::size_t keep = 3;
};

struct EngineConfig {
  int machine_procs = 320;
  int granularity = 32;
  /// Process ECCs (the -E algorithm variants).  When false, ECCs in the
  /// workload are ignored and jobs keep their submitted requirements.
  /// The factory path derives this from the algorithm name suffix.
  bool process_eccs = false;
  /// Allow EP/RP to resize *running* jobs work-conservingly (the paper's
  /// section-VI resource-elasticity extension).  Requires process_eccs.
  bool allow_running_resize = false;
  /// Record the busy-processor timeline (needed by utilization metrics and
  /// capacity-invariant tests; cheap, on by default).
  bool keep_job_outcomes = true;
  /// Order pending events through the two-tier calendar band (PR 9) instead
  /// of the plain binary heap.  Both structures realize the same strict
  /// (time, class, seq) order, so results are byte-identical either way;
  /// the switch exists for differential tests and before/after benchmarks.
  bool calendar_event_queue = true;
  /// Precompute the next cycle's DP table on the worker pool while the
  /// event queue drains (speculative cycle pipelining).  Pure cache
  /// warming keyed on the exact DP inputs — selections never change, only
  /// where they were computed.  Requires global parallelism > 1 to do
  /// anything.
  bool speculative_dp = true;
  /// Attach a TraceObserver recording a full schedule audit trace
  /// (sched/trace.hpp) to the result.  Off by default — it grows with the
  /// event count.
  bool record_trace = false;
  /// Attach a CycleStatsObserver collecting per-cycle queue-depth /
  /// backfill / DP-invocation histograms into PerfStats (surfaced by
  /// `simrun --perf-report`).  Off by default.
  bool collect_cycle_stats = false;
  /// Re-verify structural invariants (ledger consistency, queue ordering,
  /// status coherence) after every scheduling cycle, and cross-check every
  /// attachment's accumulated stats against a from-scratch recomputation.
  /// O(jobs) per cycle; used by the test suite and for debugging new
  /// policies or observers.
  bool paranoid = false;
  /// Fault injection: when `failure.enabled`, NodeDown/NodeUp events shrink
  /// and restore machine capacity during the run (default: off, which keeps
  /// every result bit-identical to the failure-free engine).
  fault::FailureModelConfig failure;
  /// What happens to running jobs preempted when capacity is lost.
  fault::RequeuePolicy requeue = fault::RequeuePolicy::kRequeueHead;
  /// Checkpoint/restart recovery: when enabled, preempted-then-requeued
  /// jobs resume from their last checkpoint (remaining = runtime - banked)
  /// instead of restarting from scratch, at the cost of periodic checkpoint
  /// overhead.  Default: disabled, byte-identical to the seed engine.
  fault::CheckpointConfig checkpoint;
  /// Termination guardrails: event / sim-time / wall-clock budgets plus a
  /// no-progress detector.  When any budget trips, the run aborts
  /// gracefully and the result carries partial metrics tagged with a typed
  /// TerminationReason.  Default: disabled (the exact seed event loop).
  sim::WatchdogConfig watchdog;
  /// Periodic crash-consistent snapshots (see SnapshotPolicy).  Default:
  /// disabled.
  SnapshotPolicy snapshot;
  /// Fair-share pools, starvation timeouts and fairness accounting (used by
  /// the FairShare policy family and the FairnessObserver).
  FairShareConfig fairshare;
};

}  // namespace es::sched
