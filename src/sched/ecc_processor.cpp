#include "sched/ecc_processor.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace es::sched {

EccOutcome EccProcessor::resize(const workload::Ecc& ecc, JobRun& job,
                                sim::Time now, int free_procs) {
  const int delta = static_cast<int>(ecc.amount);
  const int sign = ecc.type == workload::EccType::kExtendProcs ? 1 : -1;
  const int target = std::clamp(job.num + sign * delta, 1, machine_total_);
  if (target == job.num) {
    ++stats_.rejected;
    return EccOutcome::kRejectedBounds;
  }

  if (job.status != JobStatus::kRunning) {
    // Queued job: only the request changes; the user's runtime estimate is
    // their own business (CWF field 21 carries no time implication).
    if (sign > 0) {
      ++stats_.extensions;
      stats_.procs_added += target - job.num;
    } else {
      ++stats_.reductions;
      stats_.procs_removed += job.num - target;
    }
    job.num = target;
    return EccOutcome::kAppliedQueued;
  }

  if (!running_resize_) {
    ++stats_.rejected;
    return EccOutcome::kRejectedShape;
  }

  // Running job (section-VI extension): allocations move in whole grains.
  const int old_alloc = job.alloc;
  const int new_alloc =
      ((target + granularity_ - 1) / granularity_) * granularity_;
  if (new_alloc == old_alloc) {
    // The request changed within the same grain — bookkeeping only.
    job.num = target;
    return EccOutcome::kAppliedRunning;
  }
  if (new_alloc > old_alloc && new_alloc - old_alloc > free_procs) {
    ++stats_.rejected;
    return EccOutcome::kRejectedBounds;
  }

  // Work conservation: the remaining processor-seconds are fixed, so the
  // remaining time scales by old/new allocation.
  const double elapsed = now - job.start_time;
  const double scale = static_cast<double>(old_alloc) / new_alloc;
  const double remaining_req = std::max(0.0, job.req_time - elapsed);
  const double remaining_actual = std::max(0.0, job.actual_time - elapsed);
  job.req_time = elapsed + remaining_req * scale;
  job.actual_time = elapsed + remaining_actual * scale;
  job.num = target;
  job.alloc = new_alloc;
  ++stats_.running_resizes;
  if (sign > 0) {
    ++stats_.extensions;
    stats_.procs_added += new_alloc - old_alloc;
  } else {
    ++stats_.reductions;
    stats_.procs_removed += old_alloc - new_alloc;
  }
  return EccOutcome::kResizedRunning;
}

EccOutcome EccProcessor::apply(const workload::Ecc& ecc, JobRun& job,
                               sim::Time now, int free_procs) {
  ++stats_.processed;
  // Commands are external input (CWF lines, fuzzed scenarios): a malformed
  // amount is rejected, never asserted.
  if (!std::isfinite(ecc.amount) || ecc.amount < 0) {
    ++stats_.rejected;
    return EccOutcome::kRejectedBounds;
  }

  // Same-instant conflict shield: the first command per (job, instant,
  // dimension) wins; contradictory or duplicate followers are skipped so
  // resolution is deterministic and independent of file order.
  if (ecc.job_id != group_job_ || now != group_time_) {
    group_job_ = ecc.job_id;
    group_time_ = now;
    group_time_dim_ = false;
    group_proc_dim_ = false;
  }
  bool& claimed = ecc.time_dimension() ? group_time_dim_ : group_proc_dim_;
  if (claimed) {
    ++stats_.conflicts;
    return EccOutcome::kSkippedConflict;
  }
  claimed = true;

  if (job.status == JobStatus::kCompleted ||
      job.status == JobStatus::kKilled ||
      job.status == JobStatus::kAbandoned) {
    ++stats_.rejected;
    ++stats_.after_finish;
    return EccOutcome::kRejectedFinished;
  }

  switch (ecc.type) {
    case workload::EccType::kExtendTime: {
      job.req_time += ecc.amount;
      job.actual_time += ecc.amount;
      ++stats_.extensions;
      stats_.time_added += ecc.amount;
      return job.status == JobStatus::kRunning ? EccOutcome::kAppliedRunning
                                               : EccOutcome::kAppliedQueued;
    }
    case workload::EccType::kReduceTime: {
      // A reduction below 1 second of remaining estimate is clamped: the job
      // keeps a minimal slice rather than becoming degenerate.
      const double new_req = std::max(1.0, job.req_time - ecc.amount);
      const double removed = job.req_time - new_req;
      job.req_time = new_req;
      job.actual_time = std::max(1.0, job.actual_time - removed);
      ++stats_.reductions;
      stats_.time_removed += removed;
      if (job.status == JobStatus::kRunning) {
        const double elapsed = now - job.start_time;
        if (elapsed >= job.run_duration()) return EccOutcome::kCompletedJob;
        return EccOutcome::kAppliedRunning;
      }
      return EccOutcome::kAppliedQueued;
    }
    case workload::EccType::kExtendProcs:
    case workload::EccType::kReduceProcs:
      return resize(ecc, job, now, free_procs);
  }
  ES_ASSERT(false);
  return EccOutcome::kRejectedBounds;
}

}  // namespace es::sched
