#include "sched/fairshare.hpp"

#include <algorithm>

#include "sched/reservation.hpp"
#include "snap/snapshot.hpp"
#include "util/check.hpp"

namespace es::sched {

FairShare::FairShare(const FairShareConfig& config) : config_(config) {
  ES_EXPECTS(config_.fair_share_starvation_tolerance >= 0 &&
             config_.fair_share_starvation_tolerance <= 1);
  pools_.resize(std::max<std::size_t>(config_.pools.size(), 1));
}

JobRun* FairShare::pick_victim(const SchedulerContext& ctx,
                               const std::vector<PoolScratch>& scratch,
                               double total_weight, double available,
                               int starving_pool) const {
  JobRun* victim = nullptr;
  for (JobRun* job : *ctx.active) {
    const int p = job->pool;
    if (p == starving_pool) continue;
    const double entitlement =
        scratch[static_cast<std::size_t>(p)].weight / total_weight * available;
    if (scratch[static_cast<std::size_t>(p)].running <= entitlement) continue;
    if (config_.max_preemptions_per_job > 0) {
      const auto it = preempt_counts_.find(job->id);
      if (it != preempt_counts_.end() &&
          it->second >= config_.max_preemptions_per_job)
        continue;
    }
    // Youngest attempt loses the least work; id tie-break for determinism.
    if (victim == nullptr || job->start_time > victim->start_time ||
        (job->start_time == victim->start_time && job->id > victim->id))
      victim = job;
  }
  return victim;
}

void FairShare::cycle(SchedulerContext& ctx) {
  // --- gather: pool universe, weights, running allocations ----------------
  int npools = static_cast<int>(config_.pools.size());
  for (const JobRun* job : *ctx.active)
    npools = std::max(npools, job->pool + 1);
  for (const JobRun* job : *ctx.batch)
    npools = std::max(npools, job->pool + 1);
  if (npools == 0) npools = 1;
  if (static_cast<int>(pools_.size()) < npools)
    pools_.resize(static_cast<std::size_t>(npools));

  std::vector<PoolScratch> scratch(static_cast<std::size_t>(npools));
  double total_weight = 0;
  for (int p = 0; p < npools; ++p) {
    PoolScratch& s = scratch[static_cast<std::size_t>(p)];
    if (p < static_cast<int>(config_.pools.size())) {
      s.weight = config_.pools[static_cast<std::size_t>(p)].weight;
      s.min_share = config_.pools[static_cast<std::size_t>(p)].min_share;
    }
    total_weight += s.weight;
  }
  for (const JobRun* job : *ctx.active)
    scratch[static_cast<std::size_t>(job->pool)].running += job->alloc;

  // --- starvation relief --------------------------------------------------
  preempted_this_cycle_.clear();
  if (config_.preemption_enabled && npools > 1 && ctx.preempt) {
    std::vector<JobRun*> head(static_cast<std::size_t>(npools), nullptr);
    for (JobRun* job : *ctx.batch) {
      JobRun*& slot = head[static_cast<std::size_t>(job->pool)];
      if (slot == nullptr) slot = job;
    }
    const double available = ctx.machine->available();
    for (int p = 0; p < npools; ++p) {
      PoolState& state = pools_[static_cast<std::size_t>(p)];
      const PoolScratch& s = scratch[static_cast<std::size_t>(p)];
      if (head[static_cast<std::size_t>(p)] == nullptr) {
        // No pending demand: a pool cannot starve on jobs it does not have.
        state.below_share_since = -1;
        continue;
      }
      const double entitlement = s.weight / total_weight * available;
      const double min_procs = s.min_share * available;
      const bool below_min = min_procs > 0 && s.running < min_procs;
      const bool below_fair =
          s.running < config_.fair_share_starvation_tolerance * entitlement;
      if (!below_min && !below_fair) {
        state.below_share_since = -1;
        continue;
      }
      if (state.below_share_since < 0) state.below_share_since = ctx.now;
      const double timeout = below_min
                                 ? config_.min_share_preemption_timeout
                                 : config_.fair_share_preemption_timeout;
      if (ctx.now - state.below_share_since < timeout) continue;

      // Starving: claw back capacity for this pool's first waiting job.
      const int need = ctx.alloc_of(*head[static_cast<std::size_t>(p)]);
      while (ctx.free() < need) {
        JobRun* victim =
            pick_victim(ctx, scratch, total_weight, available, p);
        if (victim == nullptr) break;
        scratch[static_cast<std::size_t>(victim->pool)].running -=
            victim->alloc;
        if (config_.max_preemptions_per_job > 0)
          ++preempt_counts_[victim->id];
        preempted_this_cycle_.insert(victim->id);
        ctx.preempt(victim);
      }
      // Relief attempted; the starvation clock restarts so the next
      // preemption on this pool's behalf waits a full timeout again.
      state.below_share_since = ctx.now;
    }
  }

  // --- fair-share selection with EASY-style backfill ----------------------
  // Snapshot the queue after preemption so tail-requeued victims are part of
  // the candidate universe (they will be skipped this cycle, below).
  // forced_priority jobs (head-requeued after a failure) keep absolute
  // priority in queue order, as in every other policy.
  std::vector<JobRun*> forced;
  JobRun* queue_head = nullptr;  // oldest non-forced waiting job
  for (JobRun* job : *ctx.batch) {
    if (job->forced_priority) {
      forced.push_back(job);
    } else {
      if (queue_head == nullptr) queue_head = job;
      scratch[static_cast<std::size_t>(job->pool)].waiting.push_back(job);
    }
  }

  Freeze shadow;
  bool have_pivot = false;
  const auto try_start = [&](JobRun* job) {
    if (preempted_this_cycle_.count(job->id) != 0) return;
    const int alloc = ctx.alloc_of(*job);
    if (!have_pivot) {
      if (alloc <= ctx.free()) {
        ctx.start(job);
        scratch[static_cast<std::size_t>(job->pool)].running += alloc;
        return;
      }
      // First blocked job becomes the pivot with the classic shadow
      // reservation (skip when the need exceeds in-service capacity — no
      // completion chain can seat it until nodes come back).
      if (alloc <= ctx.machine->available())
        shadow = shadow_for_blocked(ctx, alloc);
      have_pivot = true;
      return;
    }
    if (alloc <= ctx.free() && respects(shadow, ctx.now, *job, alloc)) {
      consume(shadow, ctx.now, *job, alloc);
      ctx.start(job);
      scratch[static_cast<std::size_t>(job->pool)].running += alloc;
    }
  };

  for (JobRun* job : forced) try_start(job);

  // The batch-queue head keeps EASY's guarantee: it starts now or holds
  // the machine's shadow reservation.  Without this, a job in a
  // permanently over-share pool is visited last every cycle and can starve
  // without bound — the ratio order below only decides who *backfills*.
  if (queue_head != nullptr) {
    // The head is the front of its pool's (queue-ordered) waiting list.
    scratch[static_cast<std::size_t>(queue_head->pool)].next = 1;
    try_start(queue_head);
  }

  // Greedy pool-ratio order: repeatedly visit the first unvisited waiting
  // job of the pool with the lowest running/weight ratio (lowest pool index
  // on ties).  Every waiting job is visited exactly once per cycle.
  while (true) {
    int best = -1;
    double best_ratio = 0;
    for (int p = 0; p < npools; ++p) {
      const PoolScratch& s = scratch[static_cast<std::size_t>(p)];
      if (s.next >= s.waiting.size()) continue;
      const double ratio = s.running / s.weight;
      if (best < 0 || ratio < best_ratio - 1e-12) {
        best = p;
        best_ratio = ratio;
      }
    }
    if (best < 0) break;
    PoolScratch& s = scratch[static_cast<std::size_t>(best)];
    try_start(s.waiting[s.next++]);
  }
}

void FairShare::save_state(snap::SnapshotWriter& writer) const {
  writer.u64(pools_.size());
  for (const PoolState& state : pools_) writer.f64(state.below_share_since);
  std::vector<std::pair<workload::JobId, int>> counts(preempt_counts_.begin(),
                                                      preempt_counts_.end());
  std::sort(counts.begin(), counts.end());
  writer.u64(counts.size());
  for (const auto& [id, count] : counts) {
    writer.i64(id);
    writer.i32(count);
  }
}

void FairShare::restore_state(snap::SnapshotReader& reader) {
  const std::uint64_t npools = reader.u64();
  pools_.assign(static_cast<std::size_t>(npools), PoolState{});
  for (PoolState& state : pools_) state.below_share_since = reader.f64();
  preempt_counts_.clear();
  const std::uint64_t ncounts = reader.u64();
  for (std::uint64_t i = 0; i < ncounts; ++i) {
    const workload::JobId id = reader.i64();
    preempt_counts_[id] = reader.i32();
  }
}

}  // namespace es::sched
