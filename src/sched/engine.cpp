#include "sched/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <optional>

#include "sched/engine_params.hpp"
#include "snap/ring.hpp"
#include "snap/snapshot.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rss.hpp"
#include "util/thread_pool.hpp"
#include "workload/load.hpp"

namespace es::sched {

Engine::Engine(const EngineConfig& config, Scheduler& policy)
    : config_(config),
      policy_(&policy),
      machine_(config.machine_procs, config.granularity),
      utilization_(config.machine_procs),
      ecc_processor_(config.machine_procs, config.granularity),
      failure_model_(config.failure, config.machine_procs,
                     config.granularity),
      checkpoint_attach_(config.checkpoint),
      trace_attach_(config.record_trace),
      progress_attach_(config.watchdog, &abort_),
      cycle_stats_attach_(policy),
      fairness_attach_(config.fairshare, config.machine_procs) {
  sim_.set_calendar_band(config.calendar_event_queue);
  ecc_processor_.set_running_resize(config.allow_running_resize);
  // Register the enabled attachments in the canonical chain order (see
  // attach/observer.hpp): CheckpointObserver must precede
  // FailureStatsObserver (preempt `saved` feeds `lost`), which must
  // precede TraceObserver (the preempt record carries `lost`).  With the
  // default config nothing registers and every dispatch site loops over
  // an empty chain.  Each built-in registers with its kHookMask so hooks
  // it does not override never virtual-dispatch to it.
  if (config.checkpoint.enabled)
    attachments_.add(&checkpoint_attach_, CheckpointObserver::kHookMask);
  // The failure-stats ledger also accounts policy-initiated preemptions
  // (FairShare starvation relief), so it attaches whenever preemption can
  // occur — with or without fault injection.
  if (config.failure.enabled || policy.initiates_preemption())
    attachments_.add(&failure_attach_, FailureStatsObserver::kHookMask);
  if (config.process_eccs)
    attachments_.add(&ecc_audit_attach_, EccAuditObserver::kHookMask);
  if (config.record_trace)
    attachments_.add(&trace_attach_, TraceObserver::kHookMask);
  if (config.watchdog.no_progress_cycles > 0)
    attachments_.add(&progress_attach_, WatchdogProgressObserver::kHookMask);
  if (config.collect_cycle_stats)
    attachments_.add(&cycle_stats_attach_, CycleStatsObserver::kHookMask);
  if (config.fairshare.collect_stats)
    attachments_.add(&fairness_attach_, FairnessObserver::kHookMask);
  // A process-unique epoch tags this engine's SchedulerContexts so policy
  // caches keyed on (epoch, active_version) can never confuse two runs.
  // Only uniqueness matters; the value never influences scheduling, so the
  // nondeterministic claim order across threads is harmless.
  static std::atomic<std::uint64_t> next_epoch{1};
  run_epoch_ = next_epoch.fetch_add(1, std::memory_order_relaxed);
}

// Out of line so the unique_ptr<snap::SnapshotRing> member can destroy its
// (header-incomplete) pointee.
Engine::~Engine() = default;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Active-array order: ascending (planned end, job id) — the estimated
/// residual order the paper's freeze computations walk.
bool active_before(const JobRun* a, const JobRun* b) {
  const double ea = a->start_time + a->estimated_duration();
  const double eb = b->start_time + b->estimated_duration();
  if (ea != eb) return ea < eb;
  return a->id < b->id;
}

/// FNV-1a accumulator for the run fingerprint a restore validates against.
struct Fingerprint {
  std::uint64_t hash = 0xcbf29ce484222325ULL;

  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= p[i];
      hash *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { i64(v); }
  void f64(double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    u64(b);
  }
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

/// Hash over everything that must agree between the snapshotting run and
/// the resuming run for divergence-free resume: machine shape, the
/// behaviour-steering config knobs, the policy, and the full workload.
/// Watchdog budgets and the snapshot policy itself are deliberately
/// excluded — the resumed process may run with different guardrails.
std::uint64_t run_fingerprint(const EngineConfig& config,
                              const Scheduler& policy,
                              const workload::Workload& workload) {
  Fingerprint fp;
  // Registry-driven config portion: every fingerprint-participating
  // parameter (see sched/engine_params.cpp — watchdog budgets and snapshot
  // cadence are excluded by their no_fingerprint() marks) renders into a
  // stable name=value blob, so a knob added to the registry can never be
  // silently missing from the restore validation.  Registration needs
  // mutable storage, hence the local copy.
  EngineConfig bound = config;
  util::ParamRegistry registry;
  register_engine_params(registry, bound);
  std::string blob;
  registry.fingerprint_into(blob);
  fp.str(blob);
  fp.u64(config.failure.script.size());
  for (const fault::Outage& outage : config.failure.script) {
    fp.f64(outage.down);
    fp.f64(outage.up);
    fp.i32(outage.procs);
  }
  fp.str(policy.name());
  fp.u64(workload.jobs.size());
  for (const workload::Job& job : workload.jobs) {
    fp.i64(job.id);
    fp.f64(job.arr);
    fp.i32(job.num);
    fp.f64(job.dur);
    fp.f64(job.actual);
    fp.i32(static_cast<std::int32_t>(job.type));
    fp.f64(job.start);
    fp.i32(job.user);
    fp.i32(job.pool);
  }
  fp.u64(workload.eccs.size());
  for (const workload::Ecc& ecc : workload.eccs) {
    fp.f64(ecc.issue);
    fp.i64(ecc.job_id);
    fp.i32(static_cast<std::int32_t>(ecc.type));
    fp.f64(ecc.amount);
  }
  return fp.hash;
}

[[noreturn]] void snapshot_corrupt(const std::string& what) {
  throw snap::SnapshotError(snap::SnapshotErrorKind::kCorrupt,
                            "corrupt snapshot: " + what);
}

}  // namespace

void Engine::insert_active(JobRun* job) {
  ES_ASSERT(job->active_index < 0);
  const auto it =
      std::lower_bound(active_.begin(), active_.end(), job, active_before);
  const auto pos = it - active_.begin();
  active_.insert(it, job);
  for (auto i = pos; i < static_cast<std::ptrdiff_t>(active_.size()); ++i)
    active_[static_cast<std::size_t>(i)]->active_index =
        static_cast<std::int32_t>(i);
  ++active_version_;
}

void Engine::remove_active(JobRun* job) {
  const std::ptrdiff_t pos = job->active_index;
  ES_ASSERT(pos >= 0 && pos < static_cast<std::ptrdiff_t>(active_.size()) &&
            active_[static_cast<std::size_t>(pos)] == job);
  active_.erase(active_.begin() + pos);
  job->active_index = -1;
  for (auto i = pos; i < static_cast<std::ptrdiff_t>(active_.size()); ++i)
    active_[static_cast<std::size_t>(i)]->active_index =
        static_cast<std::int32_t>(i);
  ++active_version_;
}

void Engine::reposition_active(JobRun* job) {
  // The job's sort key (planned end, or its alloc visible to profile
  // consumers) changed: re-seat it.  Erase+insert keeps every neighbour's
  // back-reference exact; the version bumps along the way.
  remove_active(job);
  insert_active(job);
}

CycleInfo Engine::cycle_info() const {
  CycleInfo info;
  info.now = sim_.now();
  info.cycle = cycles_;
  info.batch_depth = batch_queue_.size();
  info.dedicated_depth = dedicated_queue_.size();
  info.active_jobs = active_.size();
  return info;
}

ParanoidSnapshot Engine::paranoid_snapshot() const {
  ParanoidSnapshot snapshot;
  snapshot.now = sim_.now();
  snapshot.cycle = cycles_;
  for (const JobRun* job : jobs_)
    snapshot.interruptions +=
        static_cast<std::uint64_t>(arena_.cold(*job).interruptions);
  for (const JobRun* job : finished_) {
    if (job->status == JobStatus::kAbandoned)
      ++snapshot.abandoned;
    else
      ++snapshot.finishes;
  }
  snapshot.active_jobs = active_.size();
  snapshot.cycles = cycles_;
  snapshot.dp_delta = policy_->dp_counters() - dp_baseline_;
  snapshot.ecc = &ecc_processor_.stats();
  return snapshot;
}

void Engine::run_cycle() {
  ES_ASSERT(!in_cycle_);
  in_cycle_ = true;
  ++cycles_;
  if (attachments_.has(Hook::kCycleBegin))
    attachments_.on_cycle_begin(cycle_info());
  const auto cycle_start = std::chrono::steady_clock::now();

  SchedulerContext ctx;
  ctx.now = sim_.now();
  ctx.machine = &machine_;
  ctx.batch = &batch_queue_;
  ctx.dedicated = &dedicated_queue_;
  // The active array is maintained sorted by (planned end, id) across all
  // mutations — start, finish, preemption, ECC resize — so the cycle hands
  // policies a live view instead of copying and re-sorting a snapshot.
  // start_job inserts new runners in order, which keeps the freeze math
  // within the cycle coherent with the same (end, id) key.
  ctx.active = &active_;
  ctx.run_epoch = run_epoch_;
  ctx.active_version = active_version_;
  ctx.start = [this](JobRun* job) { start_job(job); };
  ctx.move_dedicated_head_to_batch_head = [this] {
    move_dedicated_head_to_batch_head();
  };
  ctx.preempt = [this](JobRun* job) { preempt_running(job); };

  // Fold any speculative DP result in *before* the policy runs, so a
  // correctly predicted instance hits the cache inside this cycle.
  policy_->settle_speculation();
  policy_->cycle(ctx);
  cycle_seconds_ += seconds_since(cycle_start);
  // Speculative cycle pipelining: while the event pump drains toward the
  // next cycle, let the policy precompute the next cycle's DP table on the
  // worker pool.  Pure cache warming — decisions are byte-identical either
  // way (the speculate contract in sched/scheduler.hpp).  Skipped on pool
  // workers (campaign replications): submission would be refused there, so
  // the prediction scan would be pure per-cycle overhead.
  if (config_.speculative_dp && util::global_parallelism() > 1 &&
      !util::on_pool_worker())
    policy_->speculate(ctx);
  in_cycle_ = false;
  if (attachments_.has(Hook::kCycleEnd))
    attachments_.on_cycle_end(cycle_info());
  if (config_.paranoid) {
    check_invariants();
    attachments_.on_paranoid_check(paranoid_snapshot());
  }
}

void Engine::check_invariants() const {
  const double now = sim_.now();
  const unsigned long long cycle = cycles_;

  // Ledger: free + sum of active allocations == in-service capacity, and
  // the machine agrees job-by-job.  The array must also be exactly what a
  // from-scratch sort would produce — ascending (planned end, id) — with
  // every back-reference pointing at the job's own slot.
  int active_sum = 0;
  const JobRun* prev_active = nullptr;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const JobRun* job = active_[i];
    const long long id = job->id;
    ES_ASSERT_MSG(job->status == JobStatus::kRunning,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    ES_ASSERT_MSG(job->alloc == machine_.allocated(job->id),
                  "t=%.3f cycle=%llu job=%lld alloc=%d ledger=%d", now, cycle,
                  id, job->alloc, machine_.allocated(job->id));
    ES_ASSERT_MSG(job->start_time >= job->arr,
                  "t=%.3f cycle=%llu job=%lld start=%.3f arr=%.3f", now,
                  cycle, id, job->start_time, job->arr);
    ES_ASSERT_MSG(job->active_index == static_cast<std::int32_t>(i),
                  "t=%.3f cycle=%llu job=%lld index=%d slot=%zu", now, cycle,
                  id, job->active_index, i);
    ES_ASSERT_MSG(!job->in_batch_queue, "t=%.3f cycle=%llu job=%lld", now,
                  cycle, id);
    if (prev_active != nullptr) {
      const double prev_end =
          prev_active->start_time + prev_active->estimated_duration();
      const double end = job->start_time + job->estimated_duration();
      ES_ASSERT_MSG(prev_end < end ||
                        (prev_end == end && prev_active->id < id),
                    "t=%.3f cycle=%llu job=%lld end=%.3f prev=%lld "
                    "prev_end=%.3f",
                    now, cycle, id, end,
                    static_cast<long long>(prev_active->id), prev_end);
    }
    prev_active = job;
    active_sum += job->alloc;
  }
  ES_ASSERT_MSG(machine_.free() + active_sum == machine_.available(),
                "t=%.3f cycle=%llu free=%d active=%d available=%d offline=%d",
                now, cycle, machine_.free(), active_sum, machine_.available(),
                machine_.offline());
  ES_ASSERT_MSG(machine_.offline() >= 0 &&
                    machine_.offline() <= machine_.total(),
                "t=%.3f cycle=%llu offline=%d", now, cycle,
                machine_.offline());
  ES_ASSERT_MSG(active_.size() == machine_.active_jobs(),
                "t=%.3f cycle=%llu active=%zu ledger=%zu", now, cycle,
                active_.size(), machine_.active_jobs());

  // Batch queue: waiting status; FIFO by arrival once past any
  // forced-priority (moved dedicated) prefix.  Jobs requeued after a
  // node-failure preemption sit wherever the requeue policy put them, so
  // they are exempt from the arrival ordering.
  bool in_prefix = true;
  double last_arr = -1;
  std::size_t batch_count = 0;
  for (const JobRun* job : batch_queue_) {
    const long long id = job->id;
    ++batch_count;
    ES_ASSERT_MSG(job->in_batch_queue && job->active_index < 0,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    ES_ASSERT_MSG(job->status == JobStatus::kWaiting,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    if (in_prefix && job->forced_priority) continue;
    in_prefix = false;
    if (arena_.cold(*job).interruptions > 0) continue;
    ES_ASSERT_MSG(job->arr >= last_arr,
                  "t=%.3f cycle=%llu job=%lld arr=%.3f last=%.3f", now, cycle,
                  id, job->arr, last_arr);
    last_arr = job->arr;
  }
  ES_ASSERT_MSG(batch_count == batch_queue_.size(),
                "t=%.3f cycle=%llu walked=%zu size=%zu", now, cycle,
                batch_count, batch_queue_.size());

  // Dedicated list: waiting, sorted by requested start.
  double last_start = -1;
  for (const JobRun* job : dedicated_queue_) {
    const long long id = job->id;
    ES_ASSERT_MSG(job->status == JobStatus::kWaiting,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    ES_ASSERT_MSG(job->dedicated(), "t=%.3f cycle=%llu job=%lld", now, cycle,
                  id);
    ES_ASSERT_MSG(job->req_start >= last_start,
                  "t=%.3f cycle=%llu job=%lld req_start=%.3f last=%.3f", now,
                  cycle, id, job->req_start, last_start);
    last_start = job->req_start;
  }
}

void Engine::move_dedicated_head_to_batch_head() {
  ES_EXPECTS(!dedicated_queue_.empty());
  JobRun* job = dedicated_queue_.front();
  dedicated_queue_.erase(dedicated_queue_.begin());
  // Algorithm 3: the job keeps its arrival time and enters the batch queue
  // head with a saturated skip count so it is started as soon as it fits.
  job->forced_priority = true;
  job->scount = std::numeric_limits<int>::max() / 2;
  batch_queue_.push_front(job);
  attachments_.on_dedicated_move(sim_.now(), *job);
}

void Engine::on_arrival(JobRun* job) {
  if (streaming_) {
    // Refill when the last scheduled arrival fires: every event the next
    // chunk schedules is then strictly in the future, so the heap order is
    // identical to the fully-materialized schedule (see source.hpp for the
    // chunk-boundary contracts that make this safe at equal timestamps).
    ES_ASSERT(arrivals_pending_ > 0);
    if (--arrivals_pending_ == 0 && !source_exhausted_) load_next_chunk();
  }
  ES_ASSERT(job->status == JobStatus::kWaiting);
  if (job->dedicated()) {
    // Keep W^d sorted by (requested start, arrival).
    auto it = std::lower_bound(
        dedicated_queue_.begin(), dedicated_queue_.end(), job,
        [](const JobRun* a, const JobRun* b) {
          if (a->req_start != b->req_start) return a->req_start < b->req_start;
          return a->arr < b->arr;
        });
    dedicated_queue_.insert(it, job);
  } else {
    batch_queue_.push_back(job);
  }
  attachments_.on_arrival(sim_.now(), *job);
  run_cycle();
}

void Engine::on_dedicated_due(JobRun* job) {
  // The job may already have been moved/started; the wake-up is only a
  // trigger for a scheduling cycle at its requested start instant.
  (void)job;
  run_cycle();
}

void Engine::on_ecc(const workload::Ecc& ecc) {
  const auto it = by_id_.find(ecc.job_id);
  if (it == by_id_.end()) {
    attachments_.on_ecc_unknown_job(sim_.now(), ecc);
    return;
  }
  JobRun* job = it->second;
  if (streaming_ && config_.process_eccs) {
    JobRunCold& cold = arena_.cold(*job);
    ES_ASSERT(cold.ecc_pending > 0);
    --cold.ecc_pending;
  }
  const EccOutcome outcome =
      ecc_processor_.apply(ecc, *job, sim_.now(), machine_.free());
  attachments_.on_ecc_applied(sim_.now(), *job, ecc, outcome);
  switch (outcome) {
    case EccOutcome::kResizedRunning: {
      // The processor already scaled the remaining time work-conservingly
      // and set the new allocation; mirror it in the machine ledger and
      // move the completion event.
      machine_.resize(job->id, job->num);
      ES_ASSERT(machine_.allocated(job->id) == job->alloc);
      utilization_.record(sim_.now(), machine_.used());
      const bool cancelled = sim_.cancel(job->finish_event);
      ES_ASSERT(cancelled);
      attachments_.on_checkpoint_replan(*job);
      // Both the planned end (rescaled remaining time) and the allocation
      // changed: re-seat the job in the active order.
      reposition_active(job);
      const sim::Time finish =
          std::max(sim_.now(), job->start_time + job->run_duration());
      job->finish_event =
          sim_.at(finish, sim::EventClass::kJobFinish,
                  [this, job](sim::Time) { on_finish(job); },
                  static_cast<std::uint64_t>(job->id));
      break;
    }
    case EccOutcome::kAppliedRunning: {
      // Kill-by (and possibly true runtime) moved: reschedule completion
      // and re-seat the job under its new planned end.
      const bool cancelled = sim_.cancel(job->finish_event);
      ES_ASSERT(cancelled);
      attachments_.on_checkpoint_replan(*job);
      reposition_active(job);
      const sim::Time finish =
          std::max(sim_.now(), job->start_time + job->run_duration());
      job->finish_event =
          sim_.at(finish, sim::EventClass::kJobFinish,
                  [this, job](sim::Time) { on_finish(job); },
                  static_cast<std::uint64_t>(job->id));
      break;
    }
    case EccOutcome::kCompletedJob: {
      const bool cancelled = sim_.cancel(job->finish_event);
      ES_ASSERT(cancelled);
      attachments_.on_checkpoint_replan(*job);  // the run was cut short
      finish_job(job);
      break;
    }
    case EccOutcome::kAppliedQueued:
    case EccOutcome::kRejectedFinished:
    case EccOutcome::kRejectedShape:
    case EccOutcome::kRejectedBounds:
    case EccOutcome::kSkippedConflict:
      break;
  }
  // A finished job whose last pending command just dispatched can retire
  // now (kCompletedJob released inside finish_job; `job` may dangle here
  // only on paths that did not touch it).
  if (streaming_ && outcome != EccOutcome::kCompletedJob) maybe_release(job);
  run_cycle();
}

void Engine::schedule_next_outage(sim::Time from) {
  fault::Outage outage;
  if (!failure_model_.next(from, outage)) return;
  // Mirror the closure's payload for the snapshot path: the outage chain
  // keeps at most one NodeDown pending, so a single slot suffices.
  has_pending_outage_ = true;
  pending_outage_ = outage;
  sim_.at(std::max(outage.down, sim_.now()), sim::EventClass::kNodeDown,
          [this, outage](sim::Time) { on_node_down(outage); });
}

void Engine::preempt_victim() {
  // Deterministic victim rule: the most recently started running job loses
  // the least sunk work; ties (same start instant) break toward the higher
  // job id so replays are bit-identical.
  ES_EXPECTS(!active_.empty());
  auto it = std::max_element(active_.begin(), active_.end(),
                             [](const JobRun* a, const JobRun* b) {
                               if (a->start_time != b->start_time)
                                 return a->start_time < b->start_time;
                               return a->id < b->id;
                             });
  preempt_job(*it, config_.requeue);
}

void Engine::preempt_running(JobRun* job) {
  // Policy-initiated (fair-share starvation relief): the policy picked the
  // victim; the displaced job always re-enters at the batch *tail* — it
  // lost its turn to a starving pool, so jumping the queue head would undo
  // the relief.  The shared path still applies the retry cap, so a
  // thrash-prone job is eventually abandoned rather than looping forever.
  ES_EXPECTS(in_cycle_);
  ES_EXPECTS(job != nullptr);
  ES_EXPECTS(job->status == JobStatus::kRunning);
  preempt_job(job, fault::RequeuePolicy::kRequeueTail);
}

void Engine::preempt_job(JobRun* job, fault::RequeuePolicy requeue_policy) {
  remove_active(job);
  const bool cancelled = sim_.cancel(job->finish_event);
  ES_ASSERT(cancelled);
  machine_.release(job->id);
  JobRunCold& cold = arena_.cold(*job);
  ++cold.interruptions;
  // Retry budget: past the cap a job is abandoned even under a requeue
  // policy (see FailureModelConfig::max_interruptions).
  fault::RequeuePolicy policy = requeue_policy;
  if (config_.failure.max_interruptions > 0 &&
      cold.interruptions >= config_.failure.max_interruptions)
    policy = fault::RequeuePolicy::kAbandon;
  // The attachments do the preemption ledger work: CheckpointObserver
  // banks the saved work into the job, FailureStatsObserver turns the
  // unsaved remainder into lost/wasted work, TraceObserver records the
  // final figure (chain order guarantees that sequence).
  PreemptInfo info;
  info.job = job;
  info.elapsed = sim_.now() - job->start_time;
  info.policy = policy;
  attachments_.on_preempt(sim_.now(), info);
  utilization_.record(sim_.now(), machine_.used());

  const int alloc = job->alloc;
  job->finish_event = {};
  switch (policy) {
    case fault::RequeuePolicy::kRequeueHead:
      // Front of the batch queue with saturated priority, like a moved
      // dedicated job: it restarts as soon as it fits again.
      job->status = JobStatus::kWaiting;
      job->alloc = 0;
      job->start_time = -1;
      job->forced_priority = true;
      job->scount = std::numeric_limits<int>::max() / 2;
      batch_queue_.push_front(job);
      attachments_.on_requeue(sim_.now(), *job, alloc);
      break;
    case fault::RequeuePolicy::kRequeueTail:
      job->status = JobStatus::kWaiting;
      job->alloc = 0;
      job->start_time = -1;
      batch_queue_.push_back(job);
      attachments_.on_requeue(sim_.now(), *job, alloc);
      break;
    case fault::RequeuePolicy::kAbandon:
      // Keeps its alloc/start_time so collect() sees the partial run.
      job->status = JobStatus::kAbandoned;
      cold.end_time = sim_.now();
      last_finish_ = std::max(last_finish_, cold.end_time);
      if (streaming_)
        retire_streamed(job);
      else
        finished_.push_back(job);
      attachments_.on_abandon(sim_.now(), *job, alloc);
      if (streaming_) maybe_release(job);
      break;
  }
}

void Engine::on_node_down(const fault::Outage& outage) {
  has_pending_outage_ = false;  // this event is no longer pending
  if (all_jobs_finished()) return;  // run is over; let the queue drain
  // Never take more than what is still in service (a scripted storm may
  // overlap outages).
  const int procs = std::min(outage.procs, machine_.available());
  if (procs > 0) {
    // Cover the lost capacity: first from the free pool, then by preempting
    // running jobs until the failed processors are idle.
    while (machine_.free() < procs) preempt_victim();
    machine_.take_offline(procs);
    utilization_.record_capacity(sim_.now(), machine_.available());
    attachments_.on_node_down(sim_.now(), procs);
    sim_.at(std::max(outage.up, sim_.now()), sim::EventClass::kNodeUp,
            [this, procs](sim::Time) { on_node_up(procs); },
            static_cast<std::uint64_t>(procs));
  } else {
    // Nothing left to fail right now; keep the outage chain alive.
    schedule_next_outage(outage.up);
  }
  run_cycle();
}

void Engine::on_node_up(int procs) {
  machine_.bring_online(procs);
  utilization_.record_capacity(sim_.now(), machine_.available());
  attachments_.on_node_up(sim_.now(), procs);
  if (!all_jobs_finished()) schedule_next_outage(sim_.now());
  run_cycle();
}

void Engine::start_job(JobRun* job) {
  ES_EXPECTS(job->status == JobStatus::kWaiting);
  // Unlink from the batch queue (policies start batch-queue members only;
  // dedicated jobs are moved to the batch queue first) — O(1) through the
  // intrusive links instead of a linear scan.
  ES_EXPECTS(job->in_batch_queue);
  const bool backfilled = batch_queue_.front() != job;
  batch_queue_.erase(job);

  job->alloc = machine_.allocate(job->id, job->num);
  job->status = JobStatus::kRunning;
  job->start_time = sim_.now();
  // Plan checkpoint overhead before seating the job: it is part of the
  // (planned end, id) sort key insert_active files the job under.
  attachments_.on_checkpoint_replan(*job);
  insert_active(job);
  utilization_.record(sim_.now(), machine_.used());
  attachments_.on_start(sim_.now(), *job, backfilled);

  const sim::Time finish = sim_.now() + job->run_duration();
  job->finish_event = sim_.at(finish, sim::EventClass::kJobFinish,
                              [this, job](sim::Time) { on_finish(job); },
                              static_cast<std::uint64_t>(job->id));
}

void Engine::finish_job(JobRun* job) {
  ES_EXPECTS(job->status == JobStatus::kRunning);
  machine_.release(job->id);
  remove_active(job);

  job->status = job->actual_time > job->req_time ? JobStatus::kKilled
                                                 : JobStatus::kCompleted;
  JobRunCold& cold = arena_.cold(*job);
  cold.end_time = sim_.now();
  last_finish_ = std::max(last_finish_, cold.end_time);
  if (streaming_)
    retire_streamed(job);
  else
    finished_.push_back(job);
  attachments_.on_finish(sim_.now(), *job);
  utilization_.record(sim_.now(), machine_.used());
  // Release only after the attachments read the record; `job` dangles past
  // this point once no scheduled command still targets it.
  if (streaming_) maybe_release(job);
}

void Engine::on_finish(JobRun* job) {
  finish_job(job);
  run_cycle();
}

JobRun* Engine::build_job(const workload::Job& spec) {
  ES_EXPECTS(spec.num >= 1);
  ES_EXPECTS(machine_.allocation_for(spec.num) <= machine_.total());
  ES_EXPECTS(spec.dur > 0);
  if (spec.dedicated()) {
    ES_EXPECTS(policy_->supports_dedicated());
    ES_EXPECTS(spec.start >= 0);
  }
  JobRun* run = arena_.claim();
  run->id = spec.id;
  run->arr = spec.arr;
  run->req_time = spec.dur;
  run->actual_time = spec.actual_runtime();
  run->num = spec.num;
  run->req_start = spec.start;
  // Pool tags are 8-bit in the hot record; out-of-range tags saturate (the
  // registry caps configured pools at 255, so this only trims hand-built
  // workloads).
  run->pool = static_cast<std::uint8_t>(std::clamp(spec.pool, 0, 255));
  return run;
}

void Engine::build_jobs(const workload::Workload& workload) {
  ES_EXPECTS(jobs_.empty());  // one run per engine instance
  jobs_.reserve(workload.jobs.size());
  for (const workload::Job& spec : workload.jobs) {
    JobRun* ptr = build_job(spec);
    jobs_.push_back(ptr);
    const auto [pos, inserted] = by_id_.emplace(spec.id, ptr);
    (void)pos;
    ES_EXPECTS(inserted);  // duplicate job IDs are a malformed workload
  }
  workload_fingerprint_ = run_fingerprint(config_, *policy_, workload);
}

SimulationResult Engine::finish_run(
    const workload::Workload& workload,
    std::chrono::steady_clock::time_point run_start) {
  // Run-end barrier: an in-flight speculation predicted *this* run's next
  // cycle and must not leak into a later run (or survive into the perf
  // delta uncounted — drain books it as spec_discarded).
  policy_->finish_speculation();
  if (termination_ == sim::TerminationReason::kCompleted) {
    // Every job must have completed: the scheduler invariant tests rely on
    // it.  A watchdog abort leaves the run mid-flight by design, so the
    // postconditions only hold for completed runs.
    ES_ENSURES(batch_queue_.empty());
    ES_ENSURES(dedicated_queue_.empty());
    ES_ENSURES(active_.empty());
    ES_ENSURES(finished_.size() == jobs_.size());
    ES_ENSURES(machine_.offline() == 0);  // every outage was repaired
  }

  SimulationResult result = collect(workload);
  result.perf.dp = policy_->dp_counters() - dp_baseline_;
  result.perf.events = sim_.queue().counters();
  result.perf.cycle_seconds = cycle_seconds_;
  result.perf.wall_seconds = seconds_since(run_start);
  result.perf.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

SimulationResult Engine::run(const workload::Workload& workload) {
  ES_EXPECTS(!restored_);  // a restored engine continues via resume()
  const auto run_start = std::chrono::steady_clock::now();
  dp_baseline_ = policy_->dp_counters();
  build_jobs(workload);
  for (JobRun* ptr : jobs_) {
    sim_.at(ptr->arr, sim::EventClass::kJobArrival,
            [this, ptr](sim::Time) { on_arrival(ptr); },
            static_cast<std::uint64_t>(ptr->id));
    if (ptr->dedicated() && ptr->req_start > ptr->arr) {
      sim_.at(ptr->req_start, sim::EventClass::kDedicatedDue,
              [this, ptr](sim::Time) { on_dedicated_due(ptr); },
              static_cast<std::uint64_t>(ptr->id));
    }
  }
  if (config_.process_eccs) {
    for (std::size_t i = 0; i < workload.eccs.size(); ++i) {
      const workload::Ecc& ecc = workload.eccs[i];
      sim_.at(ecc.issue, sim::EventClass::kEccArrival,
              [this, ecc](sim::Time) { on_ecc(ecc); },
              static_cast<std::uint64_t>(i));
    }
  }
  first_arrival_ =
      workload.jobs.empty() ? 0 : workload.jobs.front().arr;
  utilization_.record(first_arrival_, 0);
  if (failure_model_.enabled() && !workload.jobs.empty()) {
    utilization_.record_capacity(first_arrival_, machine_.available());
    schedule_next_outage(first_arrival_);
  }

  warn_if_unbounded_retry(workload);
  pump_events();
  return finish_run(workload, run_start);
}

SimulationResult Engine::run_streamed(workload::JobSource& source) {
  ES_EXPECTS(!restored_);  // a restored engine continues via resume()
  ES_EXPECTS(jobs_.empty() && jobs_built_ == 0);  // one run per engine
  // Snapshots would need the retired-job history; streaming trades that
  // capability away for bounded memory.  Paranoid mode hashes finished_.
  ES_EXPECTS(config_.snapshot.every_cycles == 0 && !snapshot_sink_);
  ES_EXPECTS(!config_.paranoid);
  ES_EXPECTS(source.machine_procs() == config_.machine_procs);
  const auto run_start = std::chrono::steady_clock::now();
  dp_baseline_ = policy_->dp_counters();
  streaming_ = true;
  source_ = &source;
  source_exhausted_ = false;
  utilization_.set_bounded(true);
  load_next_chunk();
  // Mirrors run(): the utilization baseline lands at the first arrival even
  // though later chunks are scheduled after it (records are time-ordered
  // because refills fire at the last scheduled arrival).
  utilization_.record(first_arrival_, 0);
  if (failure_model_.enabled() && jobs_built_ > 0) {
    utilization_.record_capacity(first_arrival_, machine_.available());
    schedule_next_outage(first_arrival_);
  }
  pump_events();
  policy_->finish_speculation();  // run-end barrier, as in finish_run()
  if (termination_ == sim::TerminationReason::kCompleted) {
    ES_ENSURES(batch_queue_.empty());
    ES_ENSURES(dedicated_queue_.empty());
    ES_ENSURES(active_.empty());
    ES_ENSURES(source_exhausted_ && jobs_retired_ == jobs_built_);
    ES_ENSURES(arena_.live() == 0 && by_id_.empty());
    ES_ENSURES(machine_.offline() == 0);  // every outage was repaired
  }
  SimulationResult result = collect_streamed();
  result.perf.dp = policy_->dp_counters() - dp_baseline_;
  result.perf.events = sim_.queue().counters();
  result.perf.cycle_seconds = cycle_seconds_;
  result.perf.wall_seconds = seconds_since(run_start);
  result.perf.peak_rss_bytes = util::peak_rss_bytes();
  return result;
}

bool Engine::load_next_chunk() {
  ES_ASSERT(streaming_ && source_ != nullptr);
  if (!source_->next_chunk(chunk_)) {
    source_exhausted_ = true;
    return false;
  }
  ES_EXPECTS(!chunk_.jobs.empty());
  ES_EXPECTS(chunk_.ecc_counts.size() == chunk_.jobs.size());
  for (std::size_t i = 0; i < chunk_.jobs.size(); ++i) {
    const workload::Job& spec = chunk_.jobs[i];
    // The refill fires at the last scheduled arrival, so every new event is
    // at or after now; the source's tie-group contract guarantees strictly
    // later arrivals, keeping heap order identical to the materialized run.
    ES_EXPECTS(spec.arr >= sim_.now());
    if (jobs_built_ == 0) {
      first_arrival_ = spec.arr;
      stream_span_origin_ = spec.arr;
      stream_span_last_ = spec.arr;
    }
    // Streaming replay of workload::offered_load(), term for term in job
    // order.
    stream_proc_seconds_ +=
        static_cast<double>(spec.num) * spec.actual_runtime();
    const sim::Time begin = spec.dedicated() && spec.start >= 0
                                ? std::max(spec.arr, spec.start)
                                : spec.arr;
    stream_span_last_ =
        std::max(stream_span_last_, begin + spec.actual_runtime());
    JobRun* ptr = build_job(spec);
    const auto [pos, inserted] = by_id_.emplace(spec.id, ptr);
    (void)pos;
    ES_EXPECTS(inserted);  // duplicate live job IDs: malformed workload
    if (config_.process_eccs)
      arena_.cold(*ptr).ecc_pending = chunk_.ecc_counts[i];
    ++jobs_built_;
    ++arrivals_pending_;
    sim_.at(ptr->arr, sim::EventClass::kJobArrival,
            [this, ptr](sim::Time) { on_arrival(ptr); },
            static_cast<std::uint64_t>(ptr->id));
    if (ptr->dedicated() && ptr->req_start > ptr->arr) {
      sim_.at(ptr->req_start, sim::EventClass::kDedicatedDue,
              [this, ptr](sim::Time) { on_dedicated_due(ptr); },
              static_cast<std::uint64_t>(ptr->id));
    }
  }
  if (config_.process_eccs) {
    for (const workload::Ecc& ecc : chunk_.eccs) {
      // Chunk windows concatenate to the normalize() order, so the running
      // counter reproduces run()'s index-in-workload event tags.
      ES_ASSERT(ecc.issue >= sim_.now());
      sim_.at(ecc.issue, sim::EventClass::kEccArrival,
              [this, ecc](sim::Time) { on_ecc(ecc); }, eccs_scheduled_++);
    }
  }
  return true;
}

void Engine::retire_streamed(JobRun* job) {
  const JobOutcome outcome = outcome_of(job);
  fold_outcome(outcome, stream_result_, stream_sums_, &stream_wasted_);
  if (config_.keep_job_outcomes) stream_outcomes_.push_back(outcome);
  ++jobs_retired_;
}

void Engine::maybe_release(JobRun* job) {
  if (!streaming_) return;
  if (job->status == JobStatus::kWaiting || job->status == JobStatus::kRunning)
    return;
  // Late commands must still find the record so the EccProcessor's
  // rejected-after-finish audit matches the materialized run.
  if (config_.process_eccs && arena_.cold(*job).ecc_pending > 0) return;
  const std::size_t erased = by_id_.erase(job->id);
  ES_ASSERT(erased == 1);
  (void)erased;
  arena_.release(job);
}

SimulationResult Engine::collect_streamed() {
  SimulationResult result;
  result.completed = 0;
  result.killed = 0;
  result.first_arrival = first_arrival_;
  result.last_finish = last_finish_;
  result.makespan = last_finish_ - first_arrival_;
  result.cycles = cycles_;
  result.events = sim_.events_processed();
  result.termination = termination_;
  result.unfinished = jobs_built_ - jobs_retired_;
  result.offered_load = streamed_offered_load();
  result.ecc = ecc_processor_.stats();
  attachments_.on_collect(result);
  // Replay the per-job counters folded at retire time.  The wasted-work
  // terms were deferred because FailureStatsObserver::on_collect assigns
  // the failure ledger; adding them here, in completion order, reproduces
  // the collect() loop's sums bit for bit.
  result.completed = stream_result_.completed;
  result.killed = stream_result_.killed;
  result.abandoned = stream_result_.abandoned;
  result.dedicated_on_time = stream_result_.dedicated_on_time;
  result.max_wait = stream_result_.max_wait;
  for (const double work : stream_wasted_)
    result.failure.wasted_proc_seconds += work;
  result.failure.goodput_proc_seconds =
      stream_result_.failure.goodput_proc_seconds;
  if (config_.keep_job_outcomes) result.jobs = std::move(stream_outcomes_);
  finalize_aggregate(result, stream_sums_);
  return result;
}

double Engine::streamed_offered_load() const {
  if (jobs_built_ == 0) return 0.0;
  const double span = stream_span_last_ - stream_span_origin_;
  if (span <= 0) return 0.0;
  return stream_proc_seconds_ / (span * machine_.total());
}

void Engine::pump_events() {
  const bool snapshotting = config_.snapshot.every_cycles > 0;
  if (!config_.watchdog.enabled() && !snapshotting) {
    // The exact seed event loop: no per-event budget checks on the fast
    // path when no budget or snapshot cadence is configured.
    sim_.run();
    return;
  }
  std::optional<sim::Watchdog> watchdog;
  if (config_.watchdog.enabled()) watchdog.emplace(config_.watchdog);
  sim::TerminationReason reason = sim::TerminationReason::kCompleted;
  while (!sim_.idle()) {
    if (watchdog && watchdog->exhausted(sim_, reason)) break;
    sim_.step();
    if (abort_.requested) {
      // An attachment (the watchdog-progress observer) asked for a typed
      // abort from inside the event loop.
      reason = abort_.reason;
      break;
    }
    // Snapshots land only here, *between* events: the engine is never
    // mid-cycle, so the serialized state is a consistent event boundary.
    if (snapshotting) maybe_snapshot();
  }
  termination_ = reason;
  if (termination_ != sim::TerminationReason::kCompleted) {
    // Streaming runs count jobs built so far (the source may hold more);
    // materialized runs count the full workload.
    const std::uint64_t done =
        streaming_ ? jobs_retired_
                   : static_cast<std::uint64_t>(finished_.size());
    const std::uint64_t total =
        streaming_ ? jobs_built_ : static_cast<std::uint64_t>(jobs_.size());
    ES_LOG_WARN(
        "watchdog abort (%s) at t=%.3f after %llu events: %llu/%llu jobs "
        "finished; reporting partial metrics",
        sim::to_string(termination_), sim_.now(),
        static_cast<unsigned long long>(sim_.events_processed()),
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(total));
  }
}

void Engine::maybe_snapshot() {
  if (cycles_ - last_snapshot_cycle_ < config_.snapshot.every_cycles) return;
  last_snapshot_cycle_ = cycles_;
  snap::SnapshotWriter writer;
  snapshot(writer);
  const std::string image = writer.finish();
  ++snapshots_taken_;
  if (snapshot_sink_) snapshot_sink_(image);
  if (!config_.snapshot.dir.empty()) {
    if (!ring_)
      ring_ = std::make_unique<snap::SnapshotRing>(config_.snapshot.dir,
                                                   config_.snapshot.keep);
    ring_->commit(image);
  }
}

JobRun* Engine::job_by_id(workload::JobId id) const {
  const auto it = by_id_.find(id);
  if (it == by_id_.end())
    snapshot_corrupt("unknown job id " + std::to_string(id));
  return it->second;
}

void Engine::snapshot(snap::SnapshotWriter& writer) const {
  ES_EXPECTS(!in_cycle_);  // only valid at an event boundary

  writer.begin_section("META");
  writer.u64(workload_fingerprint_);
  writer.u64(jobs_.size());
  writer.end_section();

  // Clock + event-queue allocator/counters.  next_seq must round-trip so
  // post-restore schedule() calls draw the sequence numbers the original
  // run would have drawn — same-instant tie-breaking depends on them.
  writer.begin_section("CLCK");
  writer.f64(sim_.now());
  writer.u64(sim_.events_processed());
  writer.u64(sim_.queue().next_seq());
  const sim::EventQueueCounters& counters = sim_.queue().counters();
  writer.u64(counters.scheduled);
  writer.u64(counters.cancelled);
  writer.u64(counters.fired);
  writer.u64(counters.peak_pending);
  writer.end_section();

  // Pending events as (time, class, original seq, semantic tag) — the
  // callbacks are rebuilt from the tags on restore.
  writer.begin_section("EVTS");
  const std::vector<sim::PendingEvent> pending = sim_.queue().pending_events();
  writer.u64(pending.size());
  for (const sim::PendingEvent& event : pending) {
    writer.f64(event.time);
    writer.i32(event.cls);
    writer.u64(event.seq);
    writer.u64(event.tag);
  }
  writer.end_section();

  // Per-job runtime state, in jobs_ (= workload) order.  Immutable specs
  // are rebuilt from the workload; container membership is restored from
  // the ORDR section; finish events from EVTS.
  writer.begin_section("JOBS");
  writer.u64(jobs_.size());
  for (const JobRun* job : jobs_) {
    const JobRunCold& cold = arena_.cold(*job);
    writer.f64(job->req_time);
    writer.f64(job->actual_time);
    writer.i32(job->num);
    writer.i32(job->alloc);
    writer.f64(job->req_start);
    writer.i32(job->scount);
    writer.boolean(job->forced_priority);
    writer.i32(cold.interruptions);
    writer.f64(job->ckpt_progress);
    writer.f64(job->ckpt_overhead_planned);
    writer.u8(static_cast<std::uint8_t>(job->status));
    writer.f64(job->start_time);
    writer.f64(cold.end_time);
    writer.i32(job->frenum);
  }
  writer.end_section();

  // Container order: batch FIFO (intrusive links), dedicated list, active
  // array (sorted by planned end) and the completion order.
  writer.begin_section("ORDR");
  writer.u64(batch_queue_.size());
  for (const JobRun* job : batch_queue_) writer.i64(job->id);
  writer.u64(dedicated_queue_.size());
  for (const JobRun* job : dedicated_queue_) writer.i64(job->id);
  writer.u64(active_.size());
  for (const JobRun* job : active_) writer.i64(job->id);
  writer.u64(finished_.size());
  for (const JobRun* job : finished_) writer.i64(job->id);
  writer.end_section();

  writer.begin_section("MACH");
  const cluster::MachineState machine_state = machine_.save_state();
  writer.i32(machine_state.free);
  writer.i32(machine_state.offline);
  writer.u64(machine_state.allocations.size());
  for (const auto& [job, procs] : machine_state.allocations) {
    writer.i64(job);
    writer.i32(procs);
  }
  writer.end_section();

  writer.begin_section("UTIL");
  const cluster::UtilizationState util_state = utilization_.save_state();
  writer.i32(util_state.busy);
  writer.f64(util_state.first);
  writer.f64(util_state.last);
  writer.boolean(util_state.started);
  writer.f64(util_state.integral);
  writer.u64(util_state.steps.size());
  for (const auto& [time, busy] : util_state.steps) {
    writer.f64(time);
    writer.i32(busy);
  }
  writer.u64(util_state.capacity_steps.size());
  for (const auto& [time, available] : util_state.capacity_steps) {
    writer.f64(time);
    writer.i32(available);
  }
  writer.end_section();

  writer.begin_section("ECCP");
  const EccProcessor::State ecc_state = ecc_processor_.save_state();
  writer.u64(ecc_state.stats.processed);
  writer.u64(ecc_state.stats.extensions);
  writer.u64(ecc_state.stats.reductions);
  writer.u64(ecc_state.stats.rejected);
  writer.u64(ecc_state.stats.unknown_job);
  writer.u64(ecc_state.stats.after_finish);
  writer.u64(ecc_state.stats.running_resizes);
  writer.u64(ecc_state.stats.conflicts);
  writer.f64(ecc_state.stats.time_added);
  writer.f64(ecc_state.stats.time_removed);
  writer.f64(ecc_state.stats.procs_added);
  writer.f64(ecc_state.stats.procs_removed);
  writer.i64(ecc_state.group_job);
  writer.f64(ecc_state.group_time);
  writer.boolean(ecc_state.group_time_dim);
  writer.boolean(ecc_state.group_proc_dim);
  writer.end_section();

  // Failure model draw position + the payload of the (at most one) pending
  // outage-chain event.
  writer.begin_section("FAIL");
  writer.boolean(has_pending_outage_);
  writer.f64(pending_outage_.down);
  writer.f64(pending_outage_.up);
  writer.i32(pending_outage_.procs);
  const fault::FailureModel::State fail_state = failure_model_.save_state();
  for (const std::uint64_t word : fail_state.rng.s) writer.u64(word);
  writer.f64(fail_state.rng.cached_normal);
  writer.boolean(fail_state.rng.has_cached_normal);
  writer.u64(fail_state.script_index);
  writer.f64(fail_state.cursor);
  writer.end_section();

  // Engine scalars.  DP counters are policy-cumulative (the policy object
  // outlives engines), so the snapshot stores the *delta* accumulated by
  // this run; restore re-anchors the baseline below the resuming policy's
  // own counter.
  writer.begin_section("ENGN");
  writer.u64(cycles_);
  writer.f64(first_arrival_);
  writer.f64(last_finish_);
  const DpCounters dp_delta = policy_->dp_counters() - dp_baseline_;
  writer.u64(dp_delta.calls);
  writer.u64(dp_delta.fast_path);
  writer.u64(dp_delta.cache_hits);
  writer.u64(dp_delta.table_runs);
  writer.u64(dp_delta.table_cells);
  writer.end_section();

  // Every built-in attachment is a plain member that exists whether or not
  // it is registered, so all seven ledgers serialize unconditionally — the
  // layout never depends on which observers the config enabled.
  writer.begin_section("ATCH");
  checkpoint_attach_.save_state(writer);
  failure_attach_.save_state(writer);
  ecc_audit_attach_.save_state(writer);
  trace_attach_.save_state(writer);
  progress_attach_.save_state(writer);
  cycle_stats_attach_.save_state(writer);
  fairness_attach_.save_state(writer);
  writer.end_section();

  // Policy cross-cycle state (empty for every memoryless factory policy;
  // the AdaptiveSelector writes its sliding window).
  writer.begin_section("POLI");
  policy_->save_state(writer);
  writer.end_section();
}

void Engine::restore(const workload::Workload& workload,
                     snap::SnapshotReader& reader) {
  ES_EXPECTS(!restored_ && jobs_.empty());  // first call on a fresh engine

  build_jobs(workload);

  reader.open_section("META");
  const std::uint64_t fingerprint = reader.u64();
  const std::uint64_t job_count = reader.u64();
  if (fingerprint != workload_fingerprint_)
    throw snap::SnapshotError(
        snap::SnapshotErrorKind::kMismatch,
        "snapshot belongs to a different run (workload/config/policy "
        "fingerprint disagrees)");
  if (job_count != jobs_.size())
    snapshot_corrupt("job count disagrees with the workload");

  reader.open_section("JOBS");
  if (reader.u64() != jobs_.size())
    snapshot_corrupt("JOBS count disagrees with META");
  for (JobRun* job : jobs_) {
    JobRunCold& cold = arena_.cold(*job);
    job->req_time = reader.f64();
    job->actual_time = reader.f64();
    job->num = reader.i32();
    job->alloc = reader.i32();
    job->req_start = reader.f64();
    job->scount = reader.i32();
    job->forced_priority = reader.boolean();
    cold.interruptions = reader.i32();
    job->ckpt_progress = reader.f64();
    job->ckpt_overhead_planned = reader.f64();
    const std::uint8_t status = reader.u8();
    if (status > static_cast<std::uint8_t>(JobStatus::kAbandoned))
      snapshot_corrupt("job status out of range");
    job->status = static_cast<JobStatus>(status);
    job->start_time = reader.f64();
    cold.end_time = reader.f64();
    job->frenum = reader.i32();
  }

  reader.open_section("ORDR");
  const std::uint64_t batch_count = reader.u64();
  for (std::uint64_t i = 0; i < batch_count; ++i) {
    JobRun* job = job_by_id(reader.i64());
    if (job->in_batch_queue) snapshot_corrupt("job enqueued twice");
    batch_queue_.push_back(job);
  }
  const std::uint64_t dedicated_count = reader.u64();
  for (std::uint64_t i = 0; i < dedicated_count; ++i)
    dedicated_queue_.push_back(job_by_id(reader.i64()));
  const std::uint64_t active_count = reader.u64();
  for (std::uint64_t i = 0; i < active_count; ++i) {
    JobRun* job = job_by_id(reader.i64());
    if (job->active_index >= 0) snapshot_corrupt("job active twice");
    job->active_index = static_cast<std::int32_t>(active_.size());
    active_.push_back(job);
  }
  const std::uint64_t finished_count = reader.u64();
  for (std::uint64_t i = 0; i < finished_count; ++i)
    finished_.push_back(job_by_id(reader.i64()));

  reader.open_section("MACH");
  cluster::MachineState machine_state;
  machine_state.free = reader.i32();
  machine_state.offline = reader.i32();
  const std::uint64_t allocation_count = reader.u64();
  machine_state.allocations.reserve(allocation_count);
  for (std::uint64_t i = 0; i < allocation_count; ++i) {
    const cluster::JobId job = reader.i64();
    const int procs = reader.i32();
    machine_state.allocations.emplace_back(job, procs);
  }
  machine_.restore_state(machine_state);

  reader.open_section("UTIL");
  cluster::UtilizationState util_state;
  util_state.busy = reader.i32();
  util_state.first = reader.f64();
  util_state.last = reader.f64();
  util_state.started = reader.boolean();
  util_state.integral = reader.f64();
  const std::uint64_t step_count = reader.u64();
  util_state.steps.reserve(step_count);
  for (std::uint64_t i = 0; i < step_count; ++i) {
    const sim::Time time = reader.f64();
    util_state.steps.emplace_back(time, reader.i32());
  }
  const std::uint64_t capacity_count = reader.u64();
  util_state.capacity_steps.reserve(capacity_count);
  for (std::uint64_t i = 0; i < capacity_count; ++i) {
    const sim::Time time = reader.f64();
    util_state.capacity_steps.emplace_back(time, reader.i32());
  }
  utilization_.restore_state(util_state);

  reader.open_section("ECCP");
  EccProcessor::State ecc_state;
  ecc_state.stats.processed = reader.u64();
  ecc_state.stats.extensions = reader.u64();
  ecc_state.stats.reductions = reader.u64();
  ecc_state.stats.rejected = reader.u64();
  ecc_state.stats.unknown_job = reader.u64();
  ecc_state.stats.after_finish = reader.u64();
  ecc_state.stats.running_resizes = reader.u64();
  ecc_state.stats.conflicts = reader.u64();
  ecc_state.stats.time_added = reader.f64();
  ecc_state.stats.time_removed = reader.f64();
  ecc_state.stats.procs_added = reader.f64();
  ecc_state.stats.procs_removed = reader.f64();
  ecc_state.group_job = reader.i64();
  ecc_state.group_time = reader.f64();
  ecc_state.group_time_dim = reader.boolean();
  ecc_state.group_proc_dim = reader.boolean();
  ecc_processor_.restore_state(ecc_state);

  reader.open_section("FAIL");
  has_pending_outage_ = reader.boolean();
  pending_outage_.down = reader.f64();
  pending_outage_.up = reader.f64();
  pending_outage_.procs = reader.i32();
  fault::FailureModel::State fail_state;
  for (std::uint64_t& word : fail_state.rng.s) word = reader.u64();
  fail_state.rng.cached_normal = reader.f64();
  fail_state.rng.has_cached_normal = reader.boolean();
  fail_state.script_index = reader.u64();
  fail_state.cursor = reader.f64();
  failure_model_.restore_state(fail_state);

  reader.open_section("ENGN");
  cycles_ = reader.u64();
  first_arrival_ = reader.f64();
  last_finish_ = reader.f64();
  DpCounters dp_delta;
  dp_delta.calls = reader.u64();
  dp_delta.fast_path = reader.u64();
  dp_delta.cache_hits = reader.u64();
  dp_delta.table_runs = reader.u64();
  dp_delta.table_cells = reader.u64();
  // Re-anchor mod 2^64: baseline = current − delta, so the final
  // (counters − baseline) report equals delta + whatever the resumed run
  // adds — exactly the uninterrupted run's figure.
  dp_baseline_ = policy_->dp_counters() - dp_delta;

  // Rebuild the pending event set: each saved (class, tag) pair maps back
  // to the closure the original run had scheduled.  Events are replayed in
  // saved (seq) order; restore_meta afterwards overwrites the counters the
  // replay inflated and re-seats the sequence allocator.
  reader.open_section("CLCK");
  const sim::Time now = reader.f64();
  const std::uint64_t processed = reader.u64();
  const std::uint64_t next_seq = reader.u64();
  sim::EventQueueCounters counters;
  counters.scheduled = reader.u64();
  counters.cancelled = reader.u64();
  counters.fired = reader.u64();
  counters.peak_pending = reader.u64();

  reader.open_section("EVTS");
  const std::uint64_t event_count = reader.u64();
  bool saw_outage_event = false;
  for (std::uint64_t i = 0; i < event_count; ++i) {
    const sim::Time time = reader.f64();
    const std::int32_t cls_raw = reader.i32();
    const std::uint64_t seq = reader.u64();
    const std::uint64_t tag = reader.u64();
    if (seq >= next_seq) snapshot_corrupt("event seq beyond allocator");
    const auto cls = static_cast<sim::EventClass>(cls_raw);
    switch (cls) {
      case sim::EventClass::kJobFinish: {
        JobRun* job = job_by_id(static_cast<workload::JobId>(tag));
        if (job->status != JobStatus::kRunning)
          snapshot_corrupt("finish event for a job that is not running");
        if (job->finish_event.valid())
          snapshot_corrupt("duplicate finish event");
        job->finish_event = sim_.restore_event(
            time, cls, [this, job](sim::Time) { on_finish(job); }, tag, seq);
        break;
      }
      case sim::EventClass::kJobArrival: {
        JobRun* job = job_by_id(static_cast<workload::JobId>(tag));
        sim_.restore_event(
            time, cls, [this, job](sim::Time) { on_arrival(job); }, tag, seq);
        break;
      }
      case sim::EventClass::kDedicatedDue: {
        JobRun* job = job_by_id(static_cast<workload::JobId>(tag));
        sim_.restore_event(
            time, cls, [this, job](sim::Time) { on_dedicated_due(job); }, tag,
            seq);
        break;
      }
      case sim::EventClass::kEccArrival: {
        if (tag >= workload.eccs.size())
          snapshot_corrupt("ECC event index out of range");
        const workload::Ecc ecc = workload.eccs[tag];
        sim_.restore_event(
            time, cls, [this, ecc](sim::Time) { on_ecc(ecc); }, tag, seq);
        break;
      }
      case sim::EventClass::kNodeDown: {
        if (!has_pending_outage_ || saw_outage_event)
          snapshot_corrupt("NodeDown event without a pending outage");
        saw_outage_event = true;
        const fault::Outage outage = pending_outage_;
        sim_.restore_event(
            time, cls, [this, outage](sim::Time) { on_node_down(outage); },
            tag, seq);
        break;
      }
      case sim::EventClass::kNodeUp: {
        const int procs = static_cast<int>(tag);
        if (procs <= 0 || procs > machine_.total())
          snapshot_corrupt("NodeUp processor count out of range");
        sim_.restore_event(
            time, cls, [this, procs](sim::Time) { on_node_up(procs); }, tag,
            seq);
        break;
      }
      default:
        snapshot_corrupt("unknown event class");
    }
  }
  if (has_pending_outage_ && !saw_outage_event)
    snapshot_corrupt("pending outage without its NodeDown event");
  sim_.restore_clock(now, processed);
  sim_.restore_queue_meta(next_seq, counters);

  reader.open_section("ATCH");
  checkpoint_attach_.restore_state(reader);
  failure_attach_.restore_state(reader);
  ecc_audit_attach_.restore_state(reader);
  trace_attach_.restore_state(reader);
  progress_attach_.restore_state(reader);
  cycle_stats_attach_.restore_state(reader);
  fairness_attach_.restore_state(reader);

  reader.open_section("POLI");
  // A speculation launched before the snapshot was taken predicted a cycle
  // the restored run will recompute; drain it so the resumed run starts
  // from a quiescent policy.
  policy_->finish_speculation();
  policy_->restore_state(reader);

  last_snapshot_cycle_ = cycles_;
  restored_ = true;
}

SimulationResult Engine::resume(const workload::Workload& workload,
                                snap::SnapshotReader& reader) {
  const auto run_start = std::chrono::steady_clock::now();
  restore(workload, reader);
  warn_if_unbounded_retry(workload);
  pump_events();
  return finish_run(workload, run_start);
}

void Engine::warn_if_unbounded_retry(
    const workload::Workload& workload) const {
  // Footgun detector: stochastic failures, capless restart-from-scratch
  // requeue, no checkpointing, and an MTBF below the mean job runtime mean
  // the expected number of attempts per job grows like e^(runtime/MTBF) —
  // the run may effectively never terminate.  Warn once per process.
  if (!config_.failure.enabled || !config_.failure.script.empty()) return;
  if (config_.failure.max_interruptions > 0) return;
  if (config_.requeue == fault::RequeuePolicy::kAbandon) return;
  if (config_.checkpoint.enabled) return;
  if (workload.jobs.empty()) return;
  double runtime_sum = 0;
  for (const workload::Job& job : workload.jobs)
    runtime_sum += job.actual_runtime();
  const double mean_runtime =
      runtime_sum / static_cast<double>(workload.jobs.size());
  if (config_.failure.mtbf >= mean_runtime) return;
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  ES_LOG_WARN(
      "failure MTBF (%.0f s) is below the mean job runtime (%.0f s) with an "
      "uncapped restart-from-scratch requeue policy: expected attempts grow "
      "like e^(runtime/MTBF), so the run may not terminate.  Consider "
      "--fail-retry-cap, checkpointing (--ckpt-interval), or a watchdog "
      "budget (--max-events / --wall-budget).",
      config_.failure.mtbf, mean_runtime);
}

JobOutcome Engine::outcome_of(const JobRun* job) const {
  const JobRunCold& cold = arena_.cold(*job);
  JobOutcome outcome;
  outcome.id = job->id;
  outcome.dedicated = job->dedicated();
  outcome.killed = job->status == JobStatus::kKilled;
  outcome.abandoned = job->status == JobStatus::kAbandoned;
  outcome.interruptions = cold.interruptions;
  outcome.procs = job->alloc;
  outcome.arrival = job->arr;
  outcome.started = job->start_time;
  outcome.finished = cold.end_time;
  outcome.run = cold.end_time - job->start_time;
  outcome.wait = job->dedicated()
                     ? std::max(0.0, job->start_time - job->req_start)
                     : job->start_time - job->arr;
  return outcome;
}

// One finished job's contribution to the aggregate metrics.  Shared by the
// materializing collect() loop and the streaming retire path, which folds
// each job the moment it finishes; the floating-point operation order per
// accumulator is identical either way, so the two modes produce
// byte-identical metrics for the same completion order.
void Engine::fold_outcome(const JobOutcome& outcome, SimulationResult& result,
                          FoldSums& sums, std::vector<double>* defer_wasted) {
  ++sums.count;
  if (outcome.dedicated) {
    sums.dedicated_delay_sum += outcome.wait;
    if (outcome.wait == 0) ++result.dedicated_on_time;
    ++sums.dedicated_count;
  }
  sums.wait_sum += outcome.wait;
  sums.run_sum += outcome.run;
  const double run_floor = std::max(outcome.run, 1e-9);
  sums.sd_sum += (outcome.wait + outcome.run) / run_floor;
  sums.bsd_sum += (outcome.wait + outcome.run) / std::max(outcome.run, 10.0);
  result.max_wait = std::max(result.max_wait, outcome.wait);
  const double work = static_cast<double>(outcome.procs) * outcome.run;
  if (outcome.abandoned) {
    ++result.abandoned;
    // FailureStatsObserver::on_collect *assigns* the wasted-work ledger, so
    // the streaming path defers these terms and replays them after the
    // attachments run — same terms, same order, so byte-identical sums.
    if (defer_wasted)
      defer_wasted->push_back(work);
    else
      result.failure.wasted_proc_seconds += work;
  } else if (outcome.killed) {
    ++result.killed;
    if (defer_wasted)
      defer_wasted->push_back(work);
    else
      result.failure.wasted_proc_seconds += work;
  } else {
    ++result.completed;
    result.failure.goodput_proc_seconds += work;
  }
}

SimulationResult Engine::collect(const workload::Workload& workload) const {
  SimulationResult result;
  result.completed = 0;
  result.killed = 0;
  result.first_arrival = first_arrival_;
  result.last_finish = last_finish_;
  result.makespan = last_finish_ - first_arrival_;
  result.cycles = cycles_;
  result.events = sim_.events_processed();
  result.termination = termination_;
  result.unfinished =
      static_cast<std::uint64_t>(jobs_.size() - finished_.size());
  result.offered_load = workload::offered_load(workload, machine_.total());
  result.ecc = ecc_processor_.stats();
  // Attachments deposit their ledgers (failure stats, checkpoint stats,
  // the audit trace, cycle histograms, ECC skip counts) before the
  // per-job loop adds the outcome-derived wasted/goodput work.
  attachments_.on_collect(result);

  FoldSums sums;
  for (const JobRun* job : finished_) {
    const JobOutcome outcome = outcome_of(job);
    fold_outcome(outcome, result, sums);
    if (config_.keep_job_outcomes) result.jobs.push_back(outcome);
  }
  finalize_aggregate(result, sums);
  return result;
}

void Engine::finalize_aggregate(SimulationResult& result,
                                const FoldSums& sums) const {
  const double n = static_cast<double>(sums.count);
  if (n > 0) {
    result.mean_wait = sums.wait_sum / n;
    result.mean_run = sums.run_sum / n;
    result.mean_per_job_slowdown = sums.sd_sum / n;
    result.mean_bounded_slowdown = sums.bsd_sum / n;
    // Paper definition: ratio of averages.
    result.slowdown =
        result.mean_run > 0
            ? (result.mean_wait + result.mean_run) / result.mean_run
            : 0.0;
  }
  if (sums.dedicated_count > 0)
    result.mean_dedicated_delay =
        sums.dedicated_delay_sum / static_cast<double>(sums.dedicated_count);
  result.utilization =
      utilization_.mean_utilization(first_arrival_, last_finish_);
  if (failure_model_.enabled() && last_finish_ > first_arrival_) {
    result.failure.down_proc_seconds =
        static_cast<double>(machine_.total()) *
            (last_finish_ - first_arrival_) -
        utilization_.available_proc_seconds(first_arrival_, last_finish_);
  }
}

SimulationResult simulate(const EngineConfig& config, Scheduler& policy,
                          const workload::Workload& workload) {
  Engine engine(config, policy);
  return engine.run(workload);
}

}  // namespace es::sched
