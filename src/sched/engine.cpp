#include "sched/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>

#include "util/check.hpp"
#include "util/log.hpp"
#include "workload/load.hpp"

namespace es::sched {

Engine::Engine(const EngineConfig& config, Scheduler& policy)
    : config_(config),
      policy_(&policy),
      machine_(config.machine_procs, config.granularity),
      utilization_(config.machine_procs),
      ecc_processor_(config.machine_procs, config.granularity),
      failure_model_(config.failure, config.machine_procs,
                     config.granularity),
      checkpoint_attach_(config.checkpoint),
      trace_attach_(config.record_trace),
      progress_attach_(config.watchdog, &abort_),
      cycle_stats_attach_(policy) {
  ecc_processor_.set_running_resize(config.allow_running_resize);
  // Register the enabled attachments in the canonical chain order (see
  // attach/observer.hpp): CheckpointObserver must precede
  // FailureStatsObserver (preempt `saved` feeds `lost`), which must
  // precede TraceObserver (the preempt record carries `lost`).  With the
  // default config nothing registers and every dispatch site loops over
  // an empty chain.  Each built-in registers with its kHookMask so hooks
  // it does not override never virtual-dispatch to it.
  if (config.checkpoint.enabled)
    attachments_.add(&checkpoint_attach_, CheckpointObserver::kHookMask);
  if (config.failure.enabled)
    attachments_.add(&failure_attach_, FailureStatsObserver::kHookMask);
  if (config.process_eccs)
    attachments_.add(&ecc_audit_attach_, EccAuditObserver::kHookMask);
  if (config.record_trace)
    attachments_.add(&trace_attach_, TraceObserver::kHookMask);
  if (config.watchdog.no_progress_cycles > 0)
    attachments_.add(&progress_attach_, WatchdogProgressObserver::kHookMask);
  if (config.collect_cycle_stats)
    attachments_.add(&cycle_stats_attach_, CycleStatsObserver::kHookMask);
  // A process-unique epoch tags this engine's SchedulerContexts so policy
  // caches keyed on (epoch, active_version) can never confuse two runs.
  // Only uniqueness matters; the value never influences scheduling, so the
  // nondeterministic claim order across threads is harmless.
  static std::atomic<std::uint64_t> next_epoch{1};
  run_epoch_ = next_epoch.fetch_add(1, std::memory_order_relaxed);
}

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Active-array order: ascending (planned end, job id) — the estimated
/// residual order the paper's freeze computations walk.
bool active_before(const JobRun* a, const JobRun* b) {
  const double ea = a->start_time + a->estimated_duration();
  const double eb = b->start_time + b->estimated_duration();
  if (ea != eb) return ea < eb;
  return a->spec.id < b->spec.id;
}

}  // namespace

void Engine::insert_active(JobRun* job) {
  ES_ASSERT(job->active_index < 0);
  const auto it =
      std::lower_bound(active_.begin(), active_.end(), job, active_before);
  const auto pos = it - active_.begin();
  active_.insert(it, job);
  for (auto i = pos; i < static_cast<std::ptrdiff_t>(active_.size()); ++i)
    active_[static_cast<std::size_t>(i)]->active_index = i;
  ++active_version_;
}

void Engine::remove_active(JobRun* job) {
  const auto pos = job->active_index;
  ES_ASSERT(pos >= 0 && pos < static_cast<std::ptrdiff_t>(active_.size()) &&
            active_[static_cast<std::size_t>(pos)] == job);
  active_.erase(active_.begin() + pos);
  job->active_index = -1;
  for (auto i = pos; i < static_cast<std::ptrdiff_t>(active_.size()); ++i)
    active_[static_cast<std::size_t>(i)]->active_index = i;
  ++active_version_;
}

void Engine::reposition_active(JobRun* job) {
  // The job's sort key (planned end, or its alloc visible to profile
  // consumers) changed: re-seat it.  Erase+insert keeps every neighbour's
  // back-reference exact; the version bumps along the way.
  remove_active(job);
  insert_active(job);
}

CycleInfo Engine::cycle_info() const {
  CycleInfo info;
  info.now = sim_.now();
  info.cycle = cycles_;
  info.batch_depth = batch_queue_.size();
  info.dedicated_depth = dedicated_queue_.size();
  info.active_jobs = active_.size();
  return info;
}

ParanoidSnapshot Engine::paranoid_snapshot() const {
  ParanoidSnapshot snapshot;
  snapshot.now = sim_.now();
  snapshot.cycle = cycles_;
  for (const auto& job : jobs_)
    snapshot.interruptions += static_cast<std::uint64_t>(job->interruptions);
  for (const JobRun* job : finished_) {
    if (job->status == JobStatus::kAbandoned)
      ++snapshot.abandoned;
    else
      ++snapshot.finishes;
  }
  snapshot.active_jobs = active_.size();
  snapshot.cycles = cycles_;
  snapshot.dp_delta = policy_->dp_counters() - dp_baseline_;
  snapshot.ecc = &ecc_processor_.stats();
  return snapshot;
}

void Engine::run_cycle() {
  ES_ASSERT(!in_cycle_);
  in_cycle_ = true;
  ++cycles_;
  if (attachments_.has(Hook::kCycleBegin))
    attachments_.on_cycle_begin(cycle_info());
  const auto cycle_start = std::chrono::steady_clock::now();

  SchedulerContext ctx;
  ctx.now = sim_.now();
  ctx.machine = &machine_;
  ctx.batch = &batch_queue_;
  ctx.dedicated = &dedicated_queue_;
  // The active array is maintained sorted by (planned end, id) across all
  // mutations — start, finish, preemption, ECC resize — so the cycle hands
  // policies a live view instead of copying and re-sorting a snapshot.
  // start_job inserts new runners in order, which keeps the freeze math
  // within the cycle coherent with the same (end, id) key.
  ctx.active = &active_;
  ctx.run_epoch = run_epoch_;
  ctx.active_version = active_version_;
  ctx.start = [this](JobRun* job) { start_job(job); };
  ctx.move_dedicated_head_to_batch_head = [this] {
    move_dedicated_head_to_batch_head();
  };

  policy_->cycle(ctx);
  cycle_seconds_ += seconds_since(cycle_start);
  in_cycle_ = false;
  if (attachments_.has(Hook::kCycleEnd))
    attachments_.on_cycle_end(cycle_info());
  if (config_.paranoid) {
    check_invariants();
    attachments_.on_paranoid_check(paranoid_snapshot());
  }
}

void Engine::check_invariants() const {
  const double now = sim_.now();
  const unsigned long long cycle = cycles_;

  // Ledger: free + sum of active allocations == in-service capacity, and
  // the machine agrees job-by-job.  The array must also be exactly what a
  // from-scratch sort would produce — ascending (planned end, id) — with
  // every back-reference pointing at the job's own slot.
  int active_sum = 0;
  const JobRun* prev_active = nullptr;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const JobRun* job = active_[i];
    const long long id = job->spec.id;
    ES_ASSERT_MSG(job->status == JobStatus::kRunning,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    ES_ASSERT_MSG(job->alloc == machine_.allocated(job->spec.id),
                  "t=%.3f cycle=%llu job=%lld alloc=%d ledger=%d", now, cycle,
                  id, job->alloc, machine_.allocated(job->spec.id));
    ES_ASSERT_MSG(job->start_time >= job->spec.arr,
                  "t=%.3f cycle=%llu job=%lld start=%.3f arr=%.3f", now,
                  cycle, id, job->start_time, job->spec.arr);
    ES_ASSERT_MSG(job->active_index == static_cast<std::ptrdiff_t>(i),
                  "t=%.3f cycle=%llu job=%lld index=%td slot=%zu", now, cycle,
                  id, job->active_index, i);
    ES_ASSERT_MSG(!job->in_batch_queue, "t=%.3f cycle=%llu job=%lld", now,
                  cycle, id);
    if (prev_active != nullptr) {
      const double prev_end =
          prev_active->start_time + prev_active->estimated_duration();
      const double end = job->start_time + job->estimated_duration();
      ES_ASSERT_MSG(prev_end < end ||
                        (prev_end == end && prev_active->spec.id < id),
                    "t=%.3f cycle=%llu job=%lld end=%.3f prev=%lld "
                    "prev_end=%.3f",
                    now, cycle, id, end,
                    static_cast<long long>(prev_active->spec.id), prev_end);
    }
    prev_active = job;
    active_sum += job->alloc;
  }
  ES_ASSERT_MSG(machine_.free() + active_sum == machine_.available(),
                "t=%.3f cycle=%llu free=%d active=%d available=%d offline=%d",
                now, cycle, machine_.free(), active_sum, machine_.available(),
                machine_.offline());
  ES_ASSERT_MSG(machine_.offline() >= 0 &&
                    machine_.offline() <= machine_.total(),
                "t=%.3f cycle=%llu offline=%d", now, cycle,
                machine_.offline());
  ES_ASSERT_MSG(active_.size() == machine_.active_jobs(),
                "t=%.3f cycle=%llu active=%zu ledger=%zu", now, cycle,
                active_.size(), machine_.active_jobs());

  // Batch queue: waiting status; FIFO by arrival once past any
  // forced-priority (moved dedicated) prefix.  Jobs requeued after a
  // node-failure preemption sit wherever the requeue policy put them, so
  // they are exempt from the arrival ordering.
  bool in_prefix = true;
  double last_arr = -1;
  std::size_t batch_count = 0;
  for (const JobRun* job : batch_queue_) {
    const long long id = job->spec.id;
    ++batch_count;
    ES_ASSERT_MSG(job->in_batch_queue && job->active_index < 0,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    ES_ASSERT_MSG(job->status == JobStatus::kWaiting,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    if (in_prefix && job->forced_priority) continue;
    in_prefix = false;
    if (job->interruptions > 0) continue;
    ES_ASSERT_MSG(job->spec.arr >= last_arr,
                  "t=%.3f cycle=%llu job=%lld arr=%.3f last=%.3f", now, cycle,
                  id, job->spec.arr, last_arr);
    last_arr = job->spec.arr;
  }
  ES_ASSERT_MSG(batch_count == batch_queue_.size(),
                "t=%.3f cycle=%llu walked=%zu size=%zu", now, cycle,
                batch_count, batch_queue_.size());

  // Dedicated list: waiting, sorted by requested start.
  double last_start = -1;
  for (const JobRun* job : dedicated_queue_) {
    const long long id = job->spec.id;
    ES_ASSERT_MSG(job->status == JobStatus::kWaiting,
                  "t=%.3f cycle=%llu job=%lld", now, cycle, id);
    ES_ASSERT_MSG(job->dedicated(), "t=%.3f cycle=%llu job=%lld", now, cycle,
                  id);
    ES_ASSERT_MSG(job->req_start >= last_start,
                  "t=%.3f cycle=%llu job=%lld req_start=%.3f last=%.3f", now,
                  cycle, id, job->req_start, last_start);
    last_start = job->req_start;
  }
}

void Engine::move_dedicated_head_to_batch_head() {
  ES_EXPECTS(!dedicated_queue_.empty());
  JobRun* job = dedicated_queue_.front();
  dedicated_queue_.erase(dedicated_queue_.begin());
  // Algorithm 3: the job keeps its arrival time and enters the batch queue
  // head with a saturated skip count so it is started as soon as it fits.
  job->forced_priority = true;
  job->scount = std::numeric_limits<int>::max() / 2;
  batch_queue_.push_front(job);
  attachments_.on_dedicated_move(sim_.now(), *job);
}

void Engine::on_arrival(JobRun* job) {
  ES_ASSERT(job->status == JobStatus::kWaiting);
  if (job->dedicated()) {
    // Keep W^d sorted by (requested start, arrival).
    auto it = std::lower_bound(
        dedicated_queue_.begin(), dedicated_queue_.end(), job,
        [](const JobRun* a, const JobRun* b) {
          if (a->req_start != b->req_start) return a->req_start < b->req_start;
          return a->spec.arr < b->spec.arr;
        });
    dedicated_queue_.insert(it, job);
  } else {
    batch_queue_.push_back(job);
  }
  attachments_.on_arrival(sim_.now(), *job);
  run_cycle();
}

void Engine::on_dedicated_due(JobRun* job) {
  // The job may already have been moved/started; the wake-up is only a
  // trigger for a scheduling cycle at its requested start instant.
  (void)job;
  run_cycle();
}

void Engine::on_ecc(const workload::Ecc& ecc) {
  const auto it = by_id_.find(ecc.job_id);
  if (it == by_id_.end()) {
    attachments_.on_ecc_unknown_job(sim_.now(), ecc);
    return;
  }
  JobRun* job = it->second;
  const EccOutcome outcome =
      ecc_processor_.apply(ecc, *job, sim_.now(), machine_.free());
  attachments_.on_ecc_applied(sim_.now(), *job, ecc, outcome);
  switch (outcome) {
    case EccOutcome::kResizedRunning: {
      // The processor already scaled the remaining time work-conservingly
      // and set the new allocation; mirror it in the machine ledger and
      // move the completion event.
      machine_.resize(job->spec.id, job->num);
      ES_ASSERT(machine_.allocated(job->spec.id) == job->alloc);
      utilization_.record(sim_.now(), machine_.used());
      const bool cancelled = sim_.cancel(job->finish_event);
      ES_ASSERT(cancelled);
      attachments_.on_checkpoint_replan(*job);
      // Both the planned end (rescaled remaining time) and the allocation
      // changed: re-seat the job in the active order.
      reposition_active(job);
      const sim::Time finish =
          std::max(sim_.now(), job->start_time + job->run_duration());
      job->finish_event = sim_.at(finish, sim::EventClass::kJobFinish,
                                  [this, job](sim::Time) { on_finish(job); });
      break;
    }
    case EccOutcome::kAppliedRunning: {
      // Kill-by (and possibly true runtime) moved: reschedule completion
      // and re-seat the job under its new planned end.
      const bool cancelled = sim_.cancel(job->finish_event);
      ES_ASSERT(cancelled);
      attachments_.on_checkpoint_replan(*job);
      reposition_active(job);
      const sim::Time finish =
          std::max(sim_.now(), job->start_time + job->run_duration());
      job->finish_event = sim_.at(finish, sim::EventClass::kJobFinish,
                                  [this, job](sim::Time) { on_finish(job); });
      break;
    }
    case EccOutcome::kCompletedJob: {
      const bool cancelled = sim_.cancel(job->finish_event);
      ES_ASSERT(cancelled);
      attachments_.on_checkpoint_replan(*job);  // the run was cut short
      finish_job(job);
      break;
    }
    case EccOutcome::kAppliedQueued:
    case EccOutcome::kRejectedFinished:
    case EccOutcome::kRejectedShape:
    case EccOutcome::kRejectedBounds:
    case EccOutcome::kSkippedConflict:
      break;
  }
  run_cycle();
}

void Engine::schedule_next_outage(sim::Time from) {
  fault::Outage outage;
  if (!failure_model_.next(from, outage)) return;
  sim_.at(std::max(outage.down, sim_.now()), sim::EventClass::kNodeDown,
          [this, outage](sim::Time) { on_node_down(outage); });
}

void Engine::preempt_victim() {
  // Deterministic victim rule: the most recently started running job loses
  // the least sunk work; ties (same start instant) break toward the higher
  // job id so replays are bit-identical.
  ES_EXPECTS(!active_.empty());
  auto it = std::max_element(active_.begin(), active_.end(),
                             [](const JobRun* a, const JobRun* b) {
                               if (a->start_time != b->start_time)
                                 return a->start_time < b->start_time;
                               return a->spec.id < b->spec.id;
                             });
  JobRun* job = *it;
  remove_active(job);
  const bool cancelled = sim_.cancel(job->finish_event);
  ES_ASSERT(cancelled);
  machine_.release(job->spec.id);
  ++job->interruptions;
  // Retry budget: past the cap a job is abandoned even under a requeue
  // policy (see FailureModelConfig::max_interruptions).
  fault::RequeuePolicy policy = config_.requeue;
  if (config_.failure.max_interruptions > 0 &&
      job->interruptions >= config_.failure.max_interruptions)
    policy = fault::RequeuePolicy::kAbandon;
  // The attachments do the preemption ledger work: CheckpointObserver
  // banks the saved work into the job, FailureStatsObserver turns the
  // unsaved remainder into lost/wasted work, TraceObserver records the
  // final figure (chain order guarantees that sequence).
  PreemptInfo info;
  info.job = job;
  info.elapsed = sim_.now() - job->start_time;
  info.policy = policy;
  attachments_.on_preempt(sim_.now(), info);
  utilization_.record(sim_.now(), machine_.used());

  const int alloc = job->alloc;
  job->finish_event = {};
  switch (policy) {
    case fault::RequeuePolicy::kRequeueHead:
      // Front of the batch queue with saturated priority, like a moved
      // dedicated job: it restarts as soon as it fits again.
      job->status = JobStatus::kWaiting;
      job->alloc = 0;
      job->start_time = -1;
      job->forced_priority = true;
      job->scount = std::numeric_limits<int>::max() / 2;
      batch_queue_.push_front(job);
      attachments_.on_requeue(sim_.now(), *job, alloc);
      break;
    case fault::RequeuePolicy::kRequeueTail:
      job->status = JobStatus::kWaiting;
      job->alloc = 0;
      job->start_time = -1;
      batch_queue_.push_back(job);
      attachments_.on_requeue(sim_.now(), *job, alloc);
      break;
    case fault::RequeuePolicy::kAbandon:
      // Keeps its alloc/start_time so collect() sees the partial run.
      job->status = JobStatus::kAbandoned;
      job->end_time = sim_.now();
      last_finish_ = std::max(last_finish_, job->end_time);
      finished_.push_back(job);
      attachments_.on_abandon(sim_.now(), *job, alloc);
      break;
  }
}

void Engine::on_node_down(const fault::Outage& outage) {
  if (all_jobs_finished()) return;  // run is over; let the queue drain
  // Never take more than what is still in service (a scripted storm may
  // overlap outages).
  const int procs = std::min(outage.procs, machine_.available());
  if (procs > 0) {
    // Cover the lost capacity: first from the free pool, then by preempting
    // running jobs until the failed processors are idle.
    while (machine_.free() < procs) preempt_victim();
    machine_.take_offline(procs);
    utilization_.record_capacity(sim_.now(), machine_.available());
    attachments_.on_node_down(sim_.now(), procs);
    sim_.at(std::max(outage.up, sim_.now()), sim::EventClass::kNodeUp,
            [this, procs](sim::Time) { on_node_up(procs); });
  } else {
    // Nothing left to fail right now; keep the outage chain alive.
    schedule_next_outage(outage.up);
  }
  run_cycle();
}

void Engine::on_node_up(int procs) {
  machine_.bring_online(procs);
  utilization_.record_capacity(sim_.now(), machine_.available());
  attachments_.on_node_up(sim_.now(), procs);
  if (!all_jobs_finished()) schedule_next_outage(sim_.now());
  run_cycle();
}

void Engine::start_job(JobRun* job) {
  ES_EXPECTS(job->status == JobStatus::kWaiting);
  // Unlink from the batch queue (policies start batch-queue members only;
  // dedicated jobs are moved to the batch queue first) — O(1) through the
  // intrusive links instead of a linear scan.
  ES_EXPECTS(job->in_batch_queue);
  const bool backfilled = batch_queue_.front() != job;
  batch_queue_.erase(job);

  job->alloc = machine_.allocate(job->spec.id, job->num);
  job->status = JobStatus::kRunning;
  job->start_time = sim_.now();
  // Plan checkpoint overhead before seating the job: it is part of the
  // (planned end, id) sort key insert_active files the job under.
  attachments_.on_checkpoint_replan(*job);
  insert_active(job);
  utilization_.record(sim_.now(), machine_.used());
  attachments_.on_start(sim_.now(), *job, backfilled);

  const sim::Time finish = sim_.now() + job->run_duration();
  job->finish_event = sim_.at(finish, sim::EventClass::kJobFinish,
                              [this, job](sim::Time) { on_finish(job); });
}

void Engine::finish_job(JobRun* job) {
  ES_EXPECTS(job->status == JobStatus::kRunning);
  machine_.release(job->spec.id);
  remove_active(job);

  job->status = job->actual_time > job->req_time ? JobStatus::kKilled
                                                 : JobStatus::kCompleted;
  job->end_time = sim_.now();
  last_finish_ = std::max(last_finish_, job->end_time);
  finished_.push_back(job);
  attachments_.on_finish(sim_.now(), *job);
  utilization_.record(sim_.now(), machine_.used());
}

void Engine::on_finish(JobRun* job) {
  finish_job(job);
  run_cycle();
}

SimulationResult Engine::run(const workload::Workload& workload) {
  ES_EXPECTS(jobs_.empty());  // one run per engine instance
  const auto run_start = std::chrono::steady_clock::now();
  dp_baseline_ = policy_->dp_counters();
  jobs_.reserve(workload.jobs.size());
  for (const workload::Job& spec : workload.jobs) {
    ES_EXPECTS(spec.num >= 1);
    ES_EXPECTS(machine_.allocation_for(spec.num) <= machine_.total());
    ES_EXPECTS(spec.dur > 0);
    if (spec.dedicated()) {
      ES_EXPECTS(policy_->supports_dedicated());
      ES_EXPECTS(spec.start >= 0);
    }
    auto run = std::make_unique<JobRun>();
    run->spec = spec;
    run->req_time = spec.dur;
    run->actual_time = spec.actual_runtime();
    run->num = spec.num;
    run->req_start = spec.start;
    JobRun* ptr = run.get();
    jobs_.push_back(std::move(run));
    const auto [pos, inserted] = by_id_.emplace(spec.id, ptr);
    (void)pos;
    ES_EXPECTS(inserted);  // duplicate job IDs are a malformed workload

    sim_.at(spec.arr, sim::EventClass::kJobArrival,
            [this, ptr](sim::Time) { on_arrival(ptr); });
    if (spec.dedicated() && spec.start > spec.arr) {
      sim_.at(spec.start, sim::EventClass::kDedicatedDue,
              [this, ptr](sim::Time) { on_dedicated_due(ptr); });
    }
  }
  if (config_.process_eccs) {
    for (const workload::Ecc& ecc : workload.eccs) {
      sim_.at(ecc.issue, sim::EventClass::kEccArrival,
              [this, ecc](sim::Time) { on_ecc(ecc); });
    }
  }
  first_arrival_ =
      workload.jobs.empty() ? 0 : workload.jobs.front().arr;
  utilization_.record(first_arrival_, 0);
  if (failure_model_.enabled() && !workload.jobs.empty()) {
    utilization_.record_capacity(first_arrival_, machine_.available());
    schedule_next_outage(first_arrival_);
  }

  warn_if_unbounded_retry(workload);
  pump_events();

  if (termination_ == sim::TerminationReason::kCompleted) {
    // Every job must have completed: the scheduler invariant tests rely on
    // it.  A watchdog abort leaves the run mid-flight by design, so the
    // postconditions only hold for completed runs.
    ES_ENSURES(batch_queue_.empty());
    ES_ENSURES(dedicated_queue_.empty());
    ES_ENSURES(active_.empty());
    ES_ENSURES(finished_.size() == jobs_.size());
    ES_ENSURES(machine_.offline() == 0);  // every outage was repaired
  }

  SimulationResult result = collect(workload);
  result.perf.dp = policy_->dp_counters() - dp_baseline_;
  result.perf.events = sim_.queue().counters();
  result.perf.cycle_seconds = cycle_seconds_;
  result.perf.wall_seconds = seconds_since(run_start);
  return result;
}

void Engine::pump_events() {
  if (!config_.watchdog.enabled()) {
    // The exact seed event loop: no per-event budget checks on the fast
    // path when no budget is configured.
    sim_.run();
    return;
  }
  sim::Watchdog watchdog(config_.watchdog);
  sim::TerminationReason reason = sim::TerminationReason::kCompleted;
  while (!sim_.idle()) {
    if (watchdog.exhausted(sim_, reason)) break;
    sim_.step();
    if (abort_.requested) {
      // An attachment (the watchdog-progress observer) asked for a typed
      // abort from inside the event loop.
      reason = abort_.reason;
      break;
    }
  }
  termination_ = reason;
  if (termination_ != sim::TerminationReason::kCompleted) {
    ES_LOG_WARN(
        "watchdog abort (%s) at t=%.3f after %llu events: %zu/%zu jobs "
        "finished; reporting partial metrics",
        sim::to_string(termination_), sim_.now(),
        static_cast<unsigned long long>(sim_.events_processed()),
        finished_.size(), jobs_.size());
  }
}

void Engine::warn_if_unbounded_retry(
    const workload::Workload& workload) const {
  // Footgun detector: stochastic failures, capless restart-from-scratch
  // requeue, no checkpointing, and an MTBF below the mean job runtime mean
  // the expected number of attempts per job grows like e^(runtime/MTBF) —
  // the run may effectively never terminate.  Warn once per process.
  if (!config_.failure.enabled || !config_.failure.script.empty()) return;
  if (config_.failure.max_interruptions > 0) return;
  if (config_.requeue == fault::RequeuePolicy::kAbandon) return;
  if (config_.checkpoint.enabled) return;
  if (workload.jobs.empty()) return;
  double runtime_sum = 0;
  for (const workload::Job& job : workload.jobs)
    runtime_sum += job.actual_runtime();
  const double mean_runtime =
      runtime_sum / static_cast<double>(workload.jobs.size());
  if (config_.failure.mtbf >= mean_runtime) return;
  static std::atomic<bool> warned{false};
  if (warned.exchange(true)) return;
  ES_LOG_WARN(
      "failure MTBF (%.0f s) is below the mean job runtime (%.0f s) with an "
      "uncapped restart-from-scratch requeue policy: expected attempts grow "
      "like e^(runtime/MTBF), so the run may not terminate.  Consider "
      "--fail-retry-cap, checkpointing (--ckpt-interval), or a watchdog "
      "budget (--max-events / --wall-budget).",
      config_.failure.mtbf, mean_runtime);
}

SimulationResult Engine::collect(const workload::Workload& workload) const {
  SimulationResult result;
  result.completed = 0;
  result.killed = 0;
  result.first_arrival = first_arrival_;
  result.last_finish = last_finish_;
  result.makespan = last_finish_ - first_arrival_;
  result.cycles = cycles_;
  result.events = sim_.events_processed();
  result.termination = termination_;
  result.unfinished =
      static_cast<std::uint64_t>(jobs_.size() - finished_.size());
  result.offered_load = workload::offered_load(workload, machine_.total());
  result.ecc = ecc_processor_.stats();
  // Attachments deposit their ledgers (failure stats, checkpoint stats,
  // the audit trace, cycle histograms, ECC skip counts) before the
  // per-job loop adds the outcome-derived wasted/goodput work.
  attachments_.on_collect(result);

  double wait_sum = 0, run_sum = 0, sd_sum = 0, bsd_sum = 0;
  double dedicated_delay_sum = 0;
  std::uint64_t dedicated_count = 0;
  for (const JobRun* job : finished_) {
    JobOutcome outcome;
    outcome.id = job->spec.id;
    outcome.dedicated = job->dedicated();
    outcome.killed = job->status == JobStatus::kKilled;
    outcome.abandoned = job->status == JobStatus::kAbandoned;
    outcome.interruptions = job->interruptions;
    outcome.procs = job->alloc;
    outcome.arrival = job->spec.arr;
    outcome.started = job->start_time;
    outcome.finished = job->end_time;
    outcome.run = job->end_time - job->start_time;
    if (job->dedicated()) {
      outcome.wait = std::max(0.0, job->start_time - job->req_start);
      dedicated_delay_sum += outcome.wait;
      if (outcome.wait == 0) ++result.dedicated_on_time;
      ++dedicated_count;
    } else {
      outcome.wait = job->start_time - job->spec.arr;
    }
    wait_sum += outcome.wait;
    run_sum += outcome.run;
    const double run_floor = std::max(outcome.run, 1e-9);
    sd_sum += (outcome.wait + outcome.run) / run_floor;
    bsd_sum += (outcome.wait + outcome.run) / std::max(outcome.run, 10.0);
    result.max_wait = std::max(result.max_wait, outcome.wait);
    const double work = static_cast<double>(outcome.procs) * outcome.run;
    if (outcome.abandoned) {
      ++result.abandoned;
      result.failure.wasted_proc_seconds += work;
    } else if (outcome.killed) {
      ++result.killed;
      result.failure.wasted_proc_seconds += work;
    } else {
      ++result.completed;
      result.failure.goodput_proc_seconds += work;
    }
    if (config_.keep_job_outcomes) result.jobs.push_back(outcome);
  }
  const double n = static_cast<double>(finished_.size());
  if (n > 0) {
    result.mean_wait = wait_sum / n;
    result.mean_run = run_sum / n;
    result.mean_per_job_slowdown = sd_sum / n;
    result.mean_bounded_slowdown = bsd_sum / n;
    // Paper definition: ratio of averages.
    result.slowdown = result.mean_run > 0
                          ? (result.mean_wait + result.mean_run) / result.mean_run
                          : 0.0;
  }
  if (dedicated_count > 0)
    result.mean_dedicated_delay =
        dedicated_delay_sum / static_cast<double>(dedicated_count);
  result.utilization =
      utilization_.mean_utilization(first_arrival_, last_finish_);
  if (failure_model_.enabled() && last_finish_ > first_arrival_) {
    result.failure.down_proc_seconds =
        static_cast<double>(machine_.total()) *
            (last_finish_ - first_arrival_) -
        utilization_.available_proc_seconds(first_arrival_, last_finish_);
  }
  return result;
}

SimulationResult simulate(const EngineConfig& config, Scheduler& policy,
                          const workload::Workload& workload) {
  Engine engine(config, policy);
  return engine.run(workload);
}

}  // namespace es::sched
