// FairShare: multi-tenant pool-weighted fair-share scheduling with
// starvation-driven preemption (ROADMAP item 1; modelled on the ytsaurus
// fair-share strategy).
//
// Jobs carry a pool tag (JobRun::pool).  Each pool has a weight and an
// optional min share; its entitlement is weight / sum(weights) of the
// in-service machine.  The policy:
//
//   1. *Starvation relief* (optional): a pool with pending demand running
//      below its min share (or below tolerance x fair share) for longer
//      than the corresponding timeout gets capacity preempted back from
//      pools running above their entitlement — youngest-started victims
//      first, through the engine's preempt/requeue machinery (the victim
//      re-enters the batch queue at the tail, checkpoint banking applies).
//   2. *Fair-share selection*: waiting jobs are started in pool-ratio order
//      (pool with the lowest running/weight first, FIFO within a pool) with
//      EASY-style aggressive backfill: the first job that does not fit
//      becomes the pivot and gets a shadow reservation; later candidates
//      start only if they fit and respect it.
//
// Work conservation: selection never refuses a fitting job, so a single
// tenant still drives the machine to the same utilization as EASY.  With
// one pool (untagged workload) the ratio order degenerates to FIFO and no
// preemption ever triggers — FairShare behaves as plain EASY backfilling.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sched/engine_config.hpp"
#include "sched/scheduler.hpp"

namespace es::sched {

class FairShare final : public Scheduler {
 public:
  explicit FairShare(const FairShareConfig& config);

  std::string name() const override { return "FairShare"; }
  bool supports_dedicated() const override { return false; }
  bool initiates_preemption() const override {
    return config_.preemption_enabled;
  }
  void cycle(SchedulerContext& ctx) override;

  void save_state(snap::SnapshotWriter& writer) const override;
  void restore_state(snap::SnapshotReader& reader) override;

 private:
  /// Cross-cycle starvation timer: when the pool first dropped below its
  /// share with pending demand (-1 = not currently below).
  struct PoolState {
    double below_share_since = -1;
  };
  /// Per-cycle working view of one pool.
  struct PoolScratch {
    double weight = 1;
    double min_share = 0;
    double running = 0;  ///< processors held by the pool's running jobs
    std::vector<JobRun*> waiting;  ///< queue-order snapshot
    std::size_t next = 0;          ///< selection cursor into `waiting`
  };

  /// Youngest-started running job of any pool currently above its
  /// entitlement (excluding `starving_pool`), eligible under the per-job
  /// preemption cap.  Null when no such victim exists.
  JobRun* pick_victim(const SchedulerContext& ctx,
                      const std::vector<PoolScratch>& scratch,
                      double total_weight, double available,
                      int starving_pool) const;

  FairShareConfig config_;
  std::vector<PoolState> pools_;
  /// Policy-initiated preemptions per job id (serialized; enforces
  /// max_preemptions_per_job across restores).
  std::unordered_map<workload::JobId, int> preempt_counts_;
  /// Jobs preempted in the current cycle: never restarted at the same
  /// instant they were displaced.
  std::unordered_set<workload::JobId> preempted_this_cycle_;
};

}  // namespace es::sched
