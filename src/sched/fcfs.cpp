#include "sched/fcfs.hpp"

namespace es::sched {

void Fcfs::cycle(SchedulerContext& ctx) {
  while (JobRun* head = ctx.batch_head()) {
    if (ctx.alloc_of(*head) > ctx.free()) return;
    ctx.start(head);
  }
}

}  // namespace es::sched
