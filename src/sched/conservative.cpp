#include "sched/conservative.hpp"

#include <algorithm>

#include "sched/reservation.hpp"
#include "util/check.hpp"

namespace es::sched {

CapacityProfile::CapacityProfile(sim::Time now, int total,
                                 const std::vector<JobRun*>& active) {
  rebuild(now, total, active);
}

void CapacityProfile::rebuild(sim::Time now, int total,
                              const std::vector<JobRun*>& active) {
  now_ = now;
  total_ = total;
  segments_.clear();
  segments_.push_back({now, total});
  for (const JobRun* job : active) {
    const sim::Time end = planned_end(*job);
    // A job whose planned end is <= now is still *occupying* its processors
    // until its completion event fires (possibly later in this same
    // timestamp's event batch), so give it an epsilon residual rather than
    // treating its capacity as free — otherwise the profile over-commits.
    const double residual = std::max(end - now, 1e-9);
    reserve(now, residual, job->alloc);
  }
}

void CapacityProfile::advance_to(sim::Time now) {
  ES_EXPECTS(now >= now_);
  if (now == now_) return;
  // Merge segments that ended by `now`: breakpoints are exactly {build time}
  // ∪ {reservation ends}, so after dropping the past ones the profile is
  // byte-for-byte what a from-scratch build at `now` produces — as long as
  // every reservation still reaches past `now` (the caller's cache-hit
  // precondition; see Conservative::cycle).
  while (segments_.size() >= 2 && segments_[1].begin <= now)
    segments_.erase(segments_.begin());
  segments_.front().begin = now;
  now_ = now;
}

std::size_t CapacityProfile::split_at(sim::Time t) {
  ES_EXPECTS(t >= now_);
  // Find the segment covering t.
  std::size_t i = 0;
  while (i + 1 < segments_.size() && segments_[i + 1].begin <= t) ++i;
  if (segments_[i].begin == t) return i;
  segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   {t, segments_[i].free});
  return i + 1;
}

int CapacityProfile::free_at(sim::Time t) const {
  ES_EXPECTS(t >= now_);
  int free = segments_.front().free;
  for (const Segment& seg : segments_) {
    if (seg.begin > t) break;
    free = seg.free;
  }
  return free;
}

void CapacityProfile::reserve(sim::Time start, double duration, int procs) {
  ES_EXPECTS(duration > 0);
  const std::size_t first = split_at(start);
  split_at(start + duration);
  for (std::size_t i = first;
       i < segments_.size() && segments_[i].begin < start + duration; ++i) {
    segments_[i].free -= procs;
    ES_ENSURES(segments_[i].free >= 0);
  }
}

sim::Time CapacityProfile::earliest_start(int procs, double duration) const {
  ES_EXPECTS(procs <= total_);
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].free < procs) continue;
    // Check the window [begin, begin + duration) stays feasible.
    const sim::Time start = segments_[i].begin;
    bool feasible = true;
    for (std::size_t j = i;
         j < segments_.size() && segments_[j].begin < start + duration; ++j) {
      if (segments_[j].free < procs) {
        feasible = false;
        break;
      }
    }
    if (feasible) return start;
  }
  ES_ASSERT(false);  // the final all-free segment always admits the job
  return 0;
}

void Conservative::cycle(SchedulerContext& ctx) {
  // No queued jobs: nothing to reserve or start, and building a profile has
  // no observable effect — skip the work entirely.
  if (ctx.batch->empty()) return;
  // Profile over the in-service capacity: offline processors cannot be
  // promised to anyone, and their repair time is unknown to the policy.
  const int available = ctx.machine->available();
  const std::vector<JobRun*>& active = *ctx.active;
  // The base profile (running jobs only) is reusable while the active set
  // and capacity are unchanged — and no active job's planned end has been
  // reached, since a past-end job would need the from-scratch epsilon
  // residual.  The active view is sorted by planned end, so its front holds
  // the earliest one.
  const bool reusable =
      cache_valid_ && cached_epoch_ == ctx.run_epoch &&
      cached_version_ == ctx.active_version &&
      cached_available_ == available &&
      (active.empty() || planned_end(*active.front()) > ctx.now);
  if (!reusable) {
    base_.rebuild(ctx.now, available, active);
    cache_valid_ = true;
    cached_epoch_ = ctx.run_epoch;
    cached_version_ = ctx.active_version;
    cached_available_ = available;
  }
  work_ = base_;
  work_.advance_to(ctx.now);
  // Give every queued job (FIFO order) its earliest reservation; start the
  // ones whose reservation is "now".  Iterate a snapshot since start()
  // mutates the queue.
  std::vector<JobRun*> snapshot(ctx.batch->begin(), ctx.batch->end());
  for (JobRun* job : snapshot) {
    const int alloc = ctx.alloc_of(*job);
    // A job larger than today's degraded machine gets its reservation once
    // capacity returns; skipping it keeps the profile feasible.
    if (alloc > available) continue;
    const double duration = std::max(job->estimated_duration(), 1e-9);
    const sim::Time start = work_.earliest_start(alloc, duration);
    work_.reserve(start, duration, alloc);
    if (start <= ctx.now) ctx.start(job);
  }
}

}  // namespace es::sched
