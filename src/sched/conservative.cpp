#include "sched/conservative.hpp"

#include <algorithm>

#include "sched/reservation.hpp"
#include "util/check.hpp"

namespace es::sched {

CapacityProfile::CapacityProfile(sim::Time now, int total,
                                 const std::vector<JobRun*>& active)
    : now_(now), total_(total) {
  segments_.push_back({now, total});
  for (const JobRun* job : active) {
    const sim::Time end = planned_end(*job);
    // A job whose planned end is <= now is still *occupying* its processors
    // until its completion event fires (possibly later in this same
    // timestamp's event batch), so give it an epsilon residual rather than
    // treating its capacity as free — otherwise the profile over-commits.
    const double residual = std::max(end - now, 1e-9);
    reserve(now, residual, job->alloc);
  }
}

std::size_t CapacityProfile::split_at(sim::Time t) {
  ES_EXPECTS(t >= now_);
  // Find the segment covering t.
  std::size_t i = 0;
  while (i + 1 < segments_.size() && segments_[i + 1].begin <= t) ++i;
  if (segments_[i].begin == t) return i;
  segments_.insert(segments_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                   {t, segments_[i].free});
  return i + 1;
}

int CapacityProfile::free_at(sim::Time t) const {
  ES_EXPECTS(t >= now_);
  int free = segments_.front().free;
  for (const Segment& seg : segments_) {
    if (seg.begin > t) break;
    free = seg.free;
  }
  return free;
}

void CapacityProfile::reserve(sim::Time start, double duration, int procs) {
  ES_EXPECTS(duration > 0);
  const std::size_t first = split_at(start);
  split_at(start + duration);
  for (std::size_t i = first;
       i < segments_.size() && segments_[i].begin < start + duration; ++i) {
    segments_[i].free -= procs;
    ES_ENSURES(segments_[i].free >= 0);
  }
}

sim::Time CapacityProfile::earliest_start(int procs, double duration) const {
  ES_EXPECTS(procs <= total_);
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].free < procs) continue;
    // Check the window [begin, begin + duration) stays feasible.
    const sim::Time start = segments_[i].begin;
    bool feasible = true;
    for (std::size_t j = i;
         j < segments_.size() && segments_[j].begin < start + duration; ++j) {
      if (segments_[j].free < procs) {
        feasible = false;
        break;
      }
    }
    if (feasible) return start;
  }
  ES_ASSERT(false);  // the final all-free segment always admits the job
  return 0;
}

void Conservative::cycle(SchedulerContext& ctx) {
  // Profile over the in-service capacity: offline processors cannot be
  // promised to anyone, and their repair time is unknown to the policy.
  const int available = ctx.machine->available();
  CapacityProfile profile(ctx.now, available, ctx.active);
  // Give every queued job (FIFO order) its earliest reservation; start the
  // ones whose reservation is "now".  Iterate a snapshot since start()
  // mutates the queue.
  std::vector<JobRun*> snapshot(ctx.batch->begin(), ctx.batch->end());
  for (JobRun* job : snapshot) {
    const int alloc = ctx.alloc_of(*job);
    // A job larger than today's degraded machine gets its reservation once
    // capacity returns; skipping it keeps the profile feasible.
    if (alloc > available) continue;
    const double duration = std::max(job->estimated_duration(), 1e-9);
    const sim::Time start = profile.earliest_start(alloc, duration);
    profile.reserve(start, duration, alloc);
    if (start <= ctx.now) ctx.start(job);
  }
}

}  // namespace es::sched
