// Schedule audit trace: an optional, ordered record of every scheduling
// event the engine produced.  Used by tests to assert event-level
// behaviour, by simrun --trace-out for debugging, and as the ground truth
// for replaying/diffing schedules across algorithm versions.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "workload/job.hpp"

namespace es::sched {

enum class TraceEventKind {
  kArrival,         ///< job entered a waiting queue
  kStart,           ///< job allocated and started
  kFinish,          ///< job completed naturally
  kKill,            ///< job hit its kill-by time
  kEccApplied,      ///< an ECC changed the job's requirements
  kEccRejected,     ///< an ECC was rejected
  kResize,          ///< a running job's allocation changed (EP/RP)
  kDedicatedMove,   ///< dedicated job moved to the batch-queue head
  kNodeDown,        ///< processors left service (fault injection)
  kNodeUp,          ///< processors returned to service
  kPreempt,         ///< running job interrupted by a node failure
  kRequeue,         ///< interrupted job returned to the waiting queue
  kAbandon,         ///< interrupted job dropped (kAbandon requeue policy)
};

const char* to_string(TraceEventKind kind);

struct TraceEvent {
  sim::Time time = 0;
  TraceEventKind kind = TraceEventKind::kArrival;
  workload::JobId job = 0;
  int procs = 0;        ///< allocation involved (0 where not applicable)
  double detail = 0;    ///< kind-specific: ECC amount, resize delta, ...
};

/// Append-only event log.
class ScheduleTrace {
 public:
  void record(sim::Time time, TraceEventKind kind, workload::JobId job,
              int procs = 0, double detail = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }

  /// Events of one kind, in order.
  std::vector<TraceEvent> of_kind(TraceEventKind kind) const;

  /// Events touching one job, in order.
  std::vector<TraceEvent> of_job(workload::JobId job) const;

  /// Writes the trace as CSV (time,kind,job,procs,detail).
  void write_csv(std::ostream& out) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace es::sched
