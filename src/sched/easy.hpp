// EASY backfilling (Mu'alem & Feitelson 2001) and its dedicated-queue
// extension EASY-D (paper section V).
//
// EASY: start queue-head jobs while they fit; when the head is blocked, give
// it the single implicit reservation (shadow time / shadow capacity) and
// backfill any later job that fits now without delaying that reservation.
//
// EASY-D adds the paper's heterogeneous treatment: dedicated jobs whose
// requested start time has arrived move to the batch-queue head (Algorithm
// 3) and start as soon as they fit; a *future* dedicated group imposes a
// second freeze that both head-starts and backfills must respect, so batch
// jobs are packed around the dedicated reservation.
#pragma once

#include "sched/reservation.hpp"
#include "sched/scheduler.hpp"

namespace es::sched {

class Easy : public Scheduler {
 public:
  /// `dedicated_aware` selects EASY-D behaviour.
  explicit Easy(bool dedicated_aware = false)
      : dedicated_aware_(dedicated_aware) {}

  std::string name() const override {
    return dedicated_aware_ ? "EASY-D" : "EASY";
  }
  bool supports_dedicated() const override { return dedicated_aware_; }
  void cycle(SchedulerContext& ctx) override;

 private:
  bool dedicated_aware_;
};

/// Moves every dedicated job whose requested start time has been reached to
/// the batch-queue head (repeated Algorithm 3).  Shared by all
/// dedicated-aware policies.  Returns the number of jobs moved.
int move_due_dedicated(SchedulerContext& ctx);

}  // namespace es::sched
