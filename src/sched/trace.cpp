#include "sched/trace.hpp"

#include <ostream>

#include "util/csv.hpp"

namespace es::sched {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival: return "arrival";
    case TraceEventKind::kStart: return "start";
    case TraceEventKind::kFinish: return "finish";
    case TraceEventKind::kKill: return "kill";
    case TraceEventKind::kEccApplied: return "ecc_applied";
    case TraceEventKind::kEccRejected: return "ecc_rejected";
    case TraceEventKind::kResize: return "resize";
    case TraceEventKind::kDedicatedMove: return "dedicated_move";
    case TraceEventKind::kNodeDown: return "node_down";
    case TraceEventKind::kNodeUp: return "node_up";
    case TraceEventKind::kPreempt: return "preempt";
    case TraceEventKind::kRequeue: return "requeue";
    case TraceEventKind::kAbandon: return "abandon";
  }
  return "?";
}

void ScheduleTrace::record(sim::Time time, TraceEventKind kind,
                           workload::JobId job, int procs, double detail) {
  events_.push_back({time, kind, job, procs, detail});
}

std::vector<TraceEvent> ScheduleTrace::of_kind(TraceEventKind kind) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_)
    if (event.kind == kind) out.push_back(event);
  return out;
}

std::vector<TraceEvent> ScheduleTrace::of_job(workload::JobId job) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : events_)
    if (event.job == job) out.push_back(event);
  return out;
}

void ScheduleTrace::write_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  csv.set_header({"time", "kind", "job", "procs", "detail"});
  for (const TraceEvent& event : events_) {
    csv.cell(event.time)
        .cell(to_string(event.kind))
        .cell(static_cast<long long>(event.job))
        .cell(event.procs)
        .cell(event.detail);
    csv.end_row();
  }
}

}  // namespace es::sched
