#include "sched/engine_params.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace es::sched {
namespace {

std::string repr_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

FairSharePool& pool_by_name(std::vector<FairSharePool>& pools,
                            const std::string& name) {
  for (FairSharePool& pool : pools)
    if (pool.name == name) return pool;
  pools.push_back(FairSharePool{name, 1.0, 0.0});
  return pools.back();
}

}  // namespace

void register_engine_params(util::ParamRegistry& registry,
                            EngineConfig& config) {
  // --- machine shape -----------------------------------------------------
  registry
      .add_int("engine.machine_procs", &config.machine_procs,
               "total processors in the simulated machine")
      .range(1, 1 << 20)
      .alias("engine.procs");
  registry
      .add_int("engine.granularity", &config.granularity,
               "allocation granularity in processors (node-card size)")
      .range(1, 1 << 20)
      .alias("engine.gran");
  registry.add_rule("engine.granularity", [&config]() -> std::string {
    if (config.granularity > config.machine_procs)
      return "granularity (" + std::to_string(config.granularity) +
             ") exceeds engine.machine_procs (" +
             std::to_string(config.machine_procs) + ")";
    if (config.machine_procs % config.granularity != 0)
      return "engine.machine_procs (" + std::to_string(config.machine_procs) +
             ") is not a multiple of granularity (" +
             std::to_string(config.granularity) + ")";
    return {};
  });

  // --- elasticity --------------------------------------------------------
  registry.add_bool("engine.process_eccs", &config.process_eccs,
                    "process runtime elasticity change commands (the -E "
                    "algorithm variants)");
  registry.add_bool(
      "engine.allow_running_resize", &config.allow_running_resize,
      "allow EP/RP ECCs to resize running jobs work-conservingly; requires "
      "engine.process_eccs");
  registry.add_rule("engine.allow_running_resize", [&config]() -> std::string {
    if (config.allow_running_resize && !config.process_eccs)
      return "requires engine.process_eccs=true (resizing running jobs is an "
             "ECC-processing extension)";
    return {};
  });

  // --- engine mechanics (fingerprint-relevant) ---------------------------
  registry.add_enum("engine.requeue", &config.requeue,
                    {{"head", static_cast<int>(fault::RequeuePolicy::kRequeueHead)},
                     {"tail", static_cast<int>(fault::RequeuePolicy::kRequeueTail)},
                     {"abandon", static_cast<int>(fault::RequeuePolicy::kAbandon)}},
                    "where failure-preempted jobs re-enter the batch queue");

  // --- engine mechanics (behaviour-neutral; excluded from fingerprint) ---
  registry
      .add_bool("engine.keep_job_outcomes", &config.keep_job_outcomes,
                "record the busy-processor timeline for utilization metrics")
      .no_fingerprint();
  registry
      .add_bool("engine.calendar_event_queue", &config.calendar_event_queue,
                "use the two-tier calendar event queue (pop order identical "
                "to the binary heap)")
      .no_fingerprint();
  registry
      .add_bool("engine.speculative_dp", &config.speculative_dp,
                "precompute next cycle's DP table on the worker pool (pure "
                "cache warming; selections never change)")
      .no_fingerprint();
  registry
      .add_bool("engine.record_trace", &config.record_trace,
                "attach a TraceObserver recording a full schedule audit "
                "trace")
      .no_fingerprint();
  registry
      .add_bool("engine.collect_cycle_stats", &config.collect_cycle_stats,
                "attach a CycleStatsObserver (per-cycle queue/backfill/DP "
                "histograms)")
      .no_fingerprint();
  registry
      .add_bool("engine.paranoid", &config.paranoid,
                "re-verify structural invariants after every cycle (slow; "
                "test/debug aid)")
      .no_fingerprint();

  // --- fault injection ---------------------------------------------------
  registry.add_bool("failure.enabled", &config.failure.enabled,
                    "inject NodeDown/NodeUp capacity outages during the run");
  registry.add_uint64("failure.seed", &config.failure.seed,
                      "RNG seed for the stochastic outage sequence");
  registry
      .add_double("failure.mtbf", &config.failure.mtbf,
                  "mean seconds between outage onsets (exponential)")
      .range(0, 1e15)
      .alias("failure.mean_time_between_failures");
  registry
      .add_double("failure.mttr", &config.failure.mttr,
                  "mean outage duration in seconds (exponential)")
      .range(0, 1e15)
      .alias("failure.mean_time_to_repair");
  registry
      .add_int("failure.min_nodes", &config.failure.min_nodes,
               "smallest outage size in node cards")
      .range(1, 1 << 20);
  registry
      .add_int("failure.max_nodes", &config.failure.max_nodes,
               "largest outage size in node cards")
      .range(1, 1 << 20);
  registry
      .add_int("failure.max_interruptions", &config.failure.max_interruptions,
               "abandon a job preempted more than this many times (0 = retry "
               "forever)")
      .range(0, 1 << 30);
  registry.add_rule("failure.max_nodes", [&config]() -> std::string {
    if (config.failure.max_nodes < config.failure.min_nodes)
      return "failure.max_nodes (" + std::to_string(config.failure.max_nodes) +
             ") is below failure.min_nodes (" +
             std::to_string(config.failure.min_nodes) + ")";
    return {};
  });
  registry.add_rule("failure.mtbf", [&config]() -> std::string {
    if (config.failure.enabled && config.failure.script.empty() &&
        config.failure.mtbf <= 0)
      return "stochastic failure injection needs a positive MTBF (or a "
             "scripted outage sequence)";
    return {};
  });

  // --- checkpoint/restart ------------------------------------------------
  registry.add_bool("checkpoint.enabled", &config.checkpoint.enabled,
                    "resume preempted jobs from their last checkpoint");
  registry
      .add_double("checkpoint.interval", &config.checkpoint.interval,
                  "useful-work seconds between periodic checkpoints (0 = "
                  "none)")
      .range(0, 1e15);
  registry
      .add_double("checkpoint.overhead", &config.checkpoint.overhead,
                  "wall seconds each periodic checkpoint costs")
      .range(0, 1e15);
  registry.add_bool("checkpoint.on_preempt", &config.checkpoint.on_preempt,
                    "bank all executed work at preemption time "
                    "(checkpoint-on-signal)");
  registry.add_rule("checkpoint.overhead", [&config]() -> std::string {
    if (config.checkpoint.overhead > 0 && config.checkpoint.interval <= 0)
      return "checkpoint overhead without a positive checkpoint.interval "
             "never applies";
    return {};
  });

  // --- watchdog budgets (termination guardrails; not part of the
  // --- simulated behaviour, so excluded from the fingerprint) ------------
  registry
      .add_uint64("watchdog.max_events", &config.watchdog.max_events,
                  "abort after this many processed events (0 = unlimited)")
      .no_fingerprint();
  registry
      .add_double("watchdog.max_sim_time", &config.watchdog.max_sim_time,
                  "abort before crossing this simulated time (0 = unlimited)")
      .range(0, 1e18)
      .no_fingerprint();
  registry
      .add_double("watchdog.wall_budget", &config.watchdog.wall_budget,
                  "abort after this many real seconds (0 = unlimited)")
      .range(0, 1e9)
      .no_fingerprint();
  registry
      .add_int("watchdog.no_progress_cycles",
               &config.watchdog.no_progress_cycles,
               "abort after this many consecutive zero-progress cycles (0 = "
               "off)")
      .range(0, 1 << 30)
      .no_fingerprint();

  // --- snapshot cadence (crash consistency; cadence is not behaviour) ----
  registry
      .add_uint64("snapshot.every_cycles", &config.snapshot.every_cycles,
                  "serialize engine state every N scheduling cycles (0 = "
                  "off)")
      .no_fingerprint();
  registry
      .add_string("snapshot.dir", &config.snapshot.dir,
                  "snapshot-ring directory (empty = in-memory sink only)")
      .no_fingerprint();
  registry
      .add_size("snapshot.keep", &config.snapshot.keep,
                "snapshot generations retained on disk")
      .range(1, 1 << 20)
      .no_fingerprint();

  // --- fair-share scheduling --------------------------------------------
  registry.add_bool("fairshare.preemption", &config.fairshare.preemption_enabled,
                    "allow FairShare to preempt over-share pools for starving "
                    "ones");
  registry
      .add_double("fairshare.min_share_preemption_timeout",
                  &config.fairshare.min_share_preemption_timeout,
                  "seconds below min share (with demand) before preemption")
      .range(0, 1e12);
  registry
      .add_double("fairshare.fair_share_preemption_timeout",
                  &config.fairshare.fair_share_preemption_timeout,
                  "seconds below tolerance x fair share before preemption")
      .range(0, 1e12);
  registry
      .add_double("fairshare.fair_share_starvation_tolerance",
                  &config.fairshare.fair_share_starvation_tolerance,
                  "fraction of fair share below which a pool is starving")
      .range(0, 1);
  registry
      .add_int("fairshare.max_preemptions_per_job",
               &config.fairshare.max_preemptions_per_job,
               "per-job cap on policy-initiated preemptions (0 = unlimited)")
      .range(0, 1 << 20);
  registry
      .add_bool("fairshare.collect_stats", &config.fairshare.collect_stats,
                "attach the FairnessObserver (per-pool wait percentiles + "
                "Jain index)")
      .no_fingerprint();

  // --- pool tree: dynamic pool.<name>.{weight,min_share} family ----------
  std::vector<FairSharePool>* pools = &config.fairshare.pools;
  registry.add_dynamic(
      "pool.",
      [pools](const std::string& suffix, const std::string& value) {
        const std::size_t dot = suffix.rfind('.');
        if (dot == std::string::npos || dot == 0)
          throw util::ConfigError(
              "pool." + suffix,
              "expected pool.<name>.weight or pool.<name>.min_share");
        const std::string name = suffix.substr(0, dot);
        const std::string attr = suffix.substr(dot + 1);
        const std::string field = "pool." + suffix;
        char* end = nullptr;
        const double parsed = std::strtod(value.c_str(), &end);
        if (end == value.c_str() || *end != '\0')
          throw util::ConfigError(field,
                                  "expected a number, got '" + value + "'");
        FairSharePool& pool = pool_by_name(*pools, name);
        if (attr == "weight") {
          if (parsed <= 0)
            throw util::ConfigError(field, "pool weight must be positive");
          pool.weight = parsed;
        } else if (attr == "min_share") {
          if (parsed < 0 || parsed > 1)
            throw util::ConfigError(field,
                                    "min_share must be within [0, 1]");
          pool.min_share = parsed;
        } else {
          throw util::ConfigError(
              field, "unknown pool attribute '" + attr +
                         "' (expected weight or min_share)");
        }
      },
      [pools]() {
        std::vector<std::pair<std::string, std::string>> entries;
        for (const FairSharePool& pool : *pools) {
          entries.emplace_back("pool." + pool.name + ".weight",
                               repr_double(pool.weight));
          entries.emplace_back("pool." + pool.name + ".min_share",
                               repr_double(pool.min_share));
        }
        return entries;
      });
  registry.add_rule("pool", [&config]() -> std::string {
    double min_share_total = 0;
    for (const FairSharePool& pool : config.fairshare.pools)
      min_share_total += pool.min_share;
    if (min_share_total > 1.0 + 1e-12)
      return "pool min_share values sum to " + repr_double(min_share_total) +
             " (> 1.0, over-committing the machine)";
    if (config.fairshare.pools.size() > 255)
      return "at most 255 pools are supported (job pool tags are 8-bit)";
    return {};
  });
}

}  // namespace es::sched
