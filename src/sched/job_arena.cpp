#include "sched/job_arena.hpp"

namespace es::sched {

void JobRunArena::grow() {
  const std::uint32_t base =
      static_cast<std::uint32_t>(chunks_.size()) * kChunkJobs;
  Chunk chunk;
  chunk.hot = std::make_unique<JobRun[]>(kChunkJobs);
  chunk.cold = std::make_unique<JobRunCold[]>(kChunkJobs);
  chunk.gen = std::make_unique<std::uint32_t[]>(kChunkJobs);
  for (std::uint32_t i = 0; i < kChunkJobs; ++i) chunk.gen[i] = 1;
  chunks_.push_back(std::move(chunk));
  // Push in reverse so the LIFO free list hands out ascending slots — a
  // fresh arena claims 0, 1, 2, ... deterministically.
  free_.reserve(free_.size() + kChunkJobs);
  for (std::uint32_t i = 0; i < kChunkJobs; ++i)
    free_.push_back(base + (kChunkJobs - 1 - i));
}

}  // namespace es::sched
