// Conservative backfilling baseline.
//
// Unlike EASY (one reservation, for the head only), conservative backfill
// gives *every* queued job a reservation: a candidate may start early only if
// it delays no job ahead of it.  The paper's related-work section contrasts
// EASY against this policy; we include it as an extra baseline and as a
// correctness anchor for tests (conservative never delays any queued job
// relative to its FCFS reservation).
//
// Reservations are recomputed from scratch each cycle over a capacity
// profile, which is the standard simulation formulation.
#pragma once

#include "sched/scheduler.hpp"

namespace es::sched {

class Conservative : public Scheduler {
 public:
  std::string name() const override { return "CONS"; }
  void cycle(SchedulerContext& ctx) override;
};

/// Piecewise-constant free-capacity profile over future time, seeded from
/// running jobs' planned ends.  Exposed for tests.
class CapacityProfile {
 public:
  /// Builds the profile at time `now` for a machine with `total` processors:
  /// free capacity rises at each active job's planned end.
  CapacityProfile(sim::Time now, int total,
                  const std::vector<JobRun*>& active);

  /// Earliest time >= now at which `procs` processors are simultaneously
  /// free for `duration` seconds.
  sim::Time earliest_start(int procs, double duration) const;

  /// Books `procs` processors during [start, start + duration).
  void reserve(sim::Time start, double duration, int procs);

  /// Free processors at time `t`.
  int free_at(sim::Time t) const;

 private:
  struct Segment {
    sim::Time begin;  ///< segment covers [begin, next.begin)
    int free;
  };
  /// Ensures a breakpoint exists at `t`, splitting the covering segment.
  std::size_t split_at(sim::Time t);

  sim::Time now_;
  int total_;
  std::vector<Segment> segments_;  ///< sorted by begin; last extends to +inf
};

}  // namespace es::sched
