// Conservative backfilling baseline.
//
// Unlike EASY (one reservation, for the head only), conservative backfill
// gives *every* queued job a reservation: a candidate may start early only if
// it delays no job ahead of it.  The paper's related-work section contrasts
// EASY against this policy; we include it as an extra baseline and as a
// correctness anchor for tests (conservative never delays any queued job
// relative to its FCFS reservation).
//
// Queued-job reservations are still recomputed each cycle (they depend on
// the queue, which changes), but the *base* profile — free capacity under
// the running jobs only — is memoised across cycles: it only changes when
// the active set or the in-service capacity does, which the engine exposes
// through (run_epoch, active_version).  A cache hit replays the stored
// profile advanced to the current time instead of re-reserving every active
// job from scratch.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"

namespace es::sched {

/// Piecewise-constant free-capacity profile over future time, seeded from
/// running jobs' planned ends.  Exposed for tests.
class CapacityProfile {
 public:
  /// Builds the profile at time `now` for a machine with `total` processors:
  /// free capacity rises at each active job's planned end.
  CapacityProfile(sim::Time now, int total,
                  const std::vector<JobRun*>& active);

  /// An empty all-free profile (rebuild() before use).
  CapacityProfile() : CapacityProfile(0, 0, {}) {}

  /// Re-seeds in place (same semantics as the constructor), reusing the
  /// segment storage so steady-state rebuilds do not allocate.
  void rebuild(sim::Time now, int total, const std::vector<JobRun*>& active);

  /// Advances the profile origin to `now` (>= the build time), merging
  /// segments that ended in the past.  After this the profile equals one
  /// built from scratch at `now` over the same reservations, provided every
  /// reservation still extends past `now`.
  void advance_to(sim::Time now);

  /// Earliest time >= now at which `procs` processors are simultaneously
  /// free for `duration` seconds.
  sim::Time earliest_start(int procs, double duration) const;

  /// Books `procs` processors during [start, start + duration).
  void reserve(sim::Time start, double duration, int procs);

  /// Free processors at time `t`.
  int free_at(sim::Time t) const;

 private:
  struct Segment {
    sim::Time begin;  ///< segment covers [begin, next.begin)
    int free;
  };
  /// Ensures a breakpoint exists at `t`, splitting the covering segment.
  std::size_t split_at(sim::Time t);

  sim::Time now_;
  int total_;
  std::vector<Segment> segments_;  ///< sorted by begin; last extends to +inf
};

class Conservative : public Scheduler {
 public:
  std::string name() const override { return "CONS"; }
  void cycle(SchedulerContext& ctx) override;

 private:
  // Memoised active-occupancy profile and the keys it was built under.
  CapacityProfile base_;
  CapacityProfile work_;  ///< per-cycle scratch copy (reuses capacity)
  bool cache_valid_ = false;
  std::uint64_t cached_epoch_ = 0;
  std::uint64_t cached_version_ = 0;
  int cached_available_ = -1;
};

}  // namespace es::sched
