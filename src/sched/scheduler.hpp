// Scheduler policy interface and the per-cycle view handed to policies.
//
// The engine invokes `cycle()` at every event (arrival, completion, ECC,
// dedicated start due).  A policy inspects the queues and the machine and
// calls `start(job)` for every waiting job it activates *now*; reservations
// are implicit (recomputed each cycle), exactly as in EASY/LOS.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/machine.hpp"
#include "sched/job_queue.hpp"
#include "sched/job_state.hpp"
#include "sched/perf.hpp"
#include "sim/time.hpp"

namespace es::snap {
class SnapshotWriter;
class SnapshotReader;
}  // namespace es::snap

namespace es::sched {

/// View of the system at one scheduling cycle.
//
// Queue discipline (paper 'Notations' box):
//  * batch  — FIFO by arrival (W^b)
//  * dedicated — sorted by requested start time (W^d)
//  * active — sorted ascending by residual execution time (A)
class SchedulerContext {
 public:
  sim::Time now = 0;
  const cluster::Machine* machine = nullptr;
  JobQueue* batch = nullptr;
  std::vector<JobRun*>* dedicated = nullptr;
  /// Live view of the engine's running set, kept incrementally sorted by
  /// (planned end, job id) — ascending estimated residual.  start() inserts
  /// the new runner in order, so freeze math within a cycle always sees the
  /// current set; no per-cycle snapshot or re-sort happens.
  const std::vector<JobRun*>* active = nullptr;

  /// Cache keys for policies that memoise work derived from the active set
  /// (Conservative's base capacity profile): `run_epoch` is unique per
  /// engine run, `active_version` bumps on every active-set mutation
  /// (insert, removal, reposition, resize).
  std::uint64_t run_epoch = 0;
  std::uint64_t active_version = 0;

  /// Activates a waiting job now: engine removes it from its queue,
  /// allocates processors and schedules its completion.  The machine state
  /// visible through `machine` reflects the allocation immediately.
  std::function<void(JobRun*)> start;

  /// Moves the dedicated-queue head to the batch-queue head (Algorithm 3).
  /// The moved job keeps its arrival time and gets scount = C_s so it is
  /// started as soon as it fits.
  std::function<void()> move_dedicated_head_to_batch_head;

  /// Policy-initiated preemption (fair-share starvation relief): the engine
  /// stops the running job, cancels its completion, releases its
  /// processors, routes the full PreemptInfo through the attachment chain
  /// (checkpoint banking, failure/waste accounting) and requeues it at the
  /// batch *tail* — the same machinery node failures use, minus the outage.
  /// Precondition: job->status == kRunning.  Only policies returning true
  /// from initiates_preemption() may call this.
  std::function<void(JobRun*)> preempt;

  /// Free (unreserved) processors right now — the paper's `m`.
  int free() const { return machine->free(); }

  /// Processors a job occupies on this machine (requested size rounded up
  /// to the allocation granularity).  All capacity arithmetic in the
  /// policies uses this effective size.
  int alloc_of(const JobRun& job) const {
    return machine->allocation_for(job.num);
  }

  JobRun* batch_head() const { return batch->empty() ? nullptr : batch->front(); }
  JobRun* dedicated_head() const {
    return dedicated->empty() ? nullptr : dedicated->front();
  }
};

/// Policy interface.  Implementations are stateless across runs except for
/// tunables (C_s, lookahead) and reusable DP workspaces.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Human-readable algorithm name ("Delayed-LOS", "EASY-D", ...).
  virtual std::string name() const = 0;

  /// One scheduling cycle; may start any number of waiting jobs.
  virtual void cycle(SchedulerContext& ctx) = 0;

  /// Whether the policy understands the dedicated queue.  The engine rejects
  /// heterogeneous workloads on policies that do not.
  virtual bool supports_dedicated() const { return false; }

  /// Whether the policy may call SchedulerContext::preempt.  The engine
  /// attaches the failure-stats ledger for such policies even without fault
  /// injection, so preempted (wasted) work is always accounted.
  virtual bool initiates_preemption() const { return false; }

  /// Cumulative knapsack-kernel counters over this instance's lifetime
  /// (zero for policies without DP kernels).  The engine snapshots them at
  /// run start and reports the per-run delta in SimulationResult::perf.
  virtual DpCounters dp_counters() const { return {}; }

  /// Toggles the DP result cache (no-op for policies without DP kernels).
  /// On by default; the off switch exists so tests and benchmarks can prove
  /// cached and uncached runs schedule identically.
  virtual void set_dp_cache(bool /*enabled*/) {}

  /// Resizes the DP result cache (no-op for policies without DP kernels).
  /// More slots survive longer between re-posed instances; probe cost is a
  /// fingerprint compare per slot.  Resizing clears the cache.
  virtual void set_dp_cache_slots(std::size_t /*slots*/) {}

  /// Opportunistically precompute work for the *next* cycle off-thread
  /// while the engine drains events (speculative cycle pipelining).  The
  /// engine calls this after cycle() when EngineConfig::speculative_dp is
  /// set and a thread pool is up.  Implementations must only *warm caches*
  /// — a speculation, hit or missed, may never change a scheduling
  /// decision.  Default: no speculation.
  virtual void speculate(const SchedulerContext& /*ctx*/) {}

  /// Folds any completed speculation into policy state; the engine calls
  /// this immediately before every cycle().  Must be cheap when nothing is
  /// in flight.
  virtual void settle_speculation() {}

  /// Run-end barrier: block until in-flight speculation completes and
  /// discard it.  The engine calls this when a run finishes (and before a
  /// snapshot restore) so no speculative task outlives the run it was
  /// predicted from.
  virtual void finish_speculation() {}

  /// Serializes policy state that influences *future* scheduling decisions
  /// into the open snapshot section.  Most policies are stateless across
  /// cycles (tunables are reconstructed from config; DP caches are keyed on
  /// (run_epoch, active_version) and rebuild deterministically), so the
  /// default writes nothing.  Policies with semantic cross-cycle state —
  /// the adaptive selector's sliding decision window — must override both
  /// hooks or a restored run would silently diverge.
  virtual void save_state(snap::SnapshotWriter& /*writer*/) const {}

  /// Restores state written by save_state() from the open section.
  virtual void restore_state(snap::SnapshotReader& /*reader*/) {}
};

}  // namespace es::sched
