// Intrusive FIFO of waiting jobs (the paper's W^b).
//
// The links live inside JobRun, so push/erase never allocate and removing a
// job the engine already holds a pointer to — every ctx.start() — is O(1)
// instead of the linear std::find a std::deque forces.  A job is in at most
// one JobQueue at a time (`in_batch_queue` guards double-insertion).
//
// Iteration yields JobRun* like the container-of-pointers it replaces, so
// policies keep writing `for (JobRun* job : *ctx.batch)`.  Iterators are
// forward-only and invalidated for the erased job only; policies that start
// jobs while scanning iterate a snapshot, exactly as before.
#pragma once

#include <cstddef>
#include <iterator>

#include "sched/job_state.hpp"
#include "util/check.hpp"

namespace es::sched {

class JobQueue {
 public:
  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = JobRun*;
    using difference_type = std::ptrdiff_t;
    using pointer = JobRun* const*;
    using reference = JobRun* const&;

    iterator() = default;
    explicit iterator(JobRun* node) : node_(node) {}
    JobRun* operator*() const { return node_; }
    iterator& operator++() {
      node_ = node_->queue_next;
      return *this;
    }
    iterator operator++(int) {
      iterator copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.node_ == b.node_;
    }
    friend bool operator!=(const iterator& a, const iterator& b) {
      return a.node_ != b.node_;
    }

   private:
    JobRun* node_ = nullptr;
  };

  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return size_; }
  JobRun* front() const { return head_; }
  JobRun* back() const { return tail_; }
  iterator begin() const { return iterator(head_); }
  iterator end() const { return iterator(nullptr); }

  void push_front(JobRun* job) {
    link(job);
    job->queue_next = head_;
    if (head_ != nullptr)
      head_->queue_prev = job;
    else
      tail_ = job;
    head_ = job;
  }

  void push_back(JobRun* job) {
    link(job);
    job->queue_prev = tail_;
    if (tail_ != nullptr)
      tail_->queue_next = job;
    else
      head_ = job;
    tail_ = job;
  }

  /// O(1) unlink.  Precondition: `job` is in this queue.
  void erase(JobRun* job) {
    ES_EXPECTS(job->in_batch_queue);
    if (job->queue_prev != nullptr)
      job->queue_prev->queue_next = job->queue_next;
    else
      head_ = job->queue_next;
    if (job->queue_next != nullptr)
      job->queue_next->queue_prev = job->queue_prev;
    else
      tail_ = job->queue_prev;
    job->queue_prev = nullptr;
    job->queue_next = nullptr;
    job->in_batch_queue = false;
    --size_;
  }

 private:
  void link(JobRun* job) {
    ES_EXPECTS(!job->in_batch_queue);
    job->queue_prev = nullptr;
    job->queue_next = nullptr;
    job->in_batch_queue = true;
    ++size_;
  }

  JobRun* head_ = nullptr;
  JobRun* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace es::sched
