// Per-run result record: the paper's performance metrics plus diagnostics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/ecc_processor.hpp"
#include "sched/perf.hpp"
#include "sim/time.hpp"
#include "sim/watchdog.hpp"
#include "workload/job.hpp"

namespace es::sched {

/// Outcome of one job, for detailed analysis.
struct JobOutcome {
  workload::JobId id = 0;
  bool dedicated = false;
  bool killed = false;
  bool abandoned = false;   ///< dropped after a node-failure preemption
  int interruptions = 0;    ///< node-failure preemptions suffered
  int procs = 0;            ///< processors occupied
  sim::Time arrival = 0;
  sim::Time started = 0;    ///< last (successful) start
  sim::Time finished = 0;
  double wait = 0;          ///< batch: start - arrival; dedicated: start delay
  double run = 0;           ///< finished - started
};

/// Fault-injection statistics of one run (all zero when the failure model
/// is disabled).
struct FailureStats {
  std::uint64_t outages = 0;        ///< NodeDown events applied
  std::uint64_t interruptions = 0;  ///< running jobs preempted by failures
  std::uint64_t requeues = 0;       ///< interrupted jobs put back in queue
  std::uint64_t abandoned = 0;      ///< interrupted jobs dropped
  double lost_proc_seconds = 0;     ///< in-progress work discarded by
                                    ///< preemptions (restarts lose progress)
  double down_proc_seconds = 0;     ///< capacity-offline integral over the run
  double goodput_proc_seconds = 0;  ///< work of jobs that completed
  double wasted_proc_seconds = 0;   ///< killed/abandoned runs + lost work

  // Checkpoint/restart recovery (all zero when the checkpoint model is
  // disabled).
  std::uint64_t checkpoints = 0;    ///< checkpoints completed (periodic and
                                    ///< on-preempt)
  double checkpoint_overhead_proc_seconds = 0;  ///< capacity spent writing
                                                ///< checkpoints
  double saved_proc_seconds = 0;    ///< preempted work recovered from the
                                    ///< last checkpoint instead of re-run
};

/// Aggregate metrics of one simulation run.
struct SimulationResult {
  // --- the paper's three headline metrics ---
  double utilization = 0;   ///< mean system utilization in [0,1]
  double mean_wait = 0;     ///< mean job waiting time, seconds
  double slowdown = 0;      ///< (avg wait + avg run) / avg run (paper defn)

  // --- additional standard metrics ---
  double mean_per_job_slowdown = 0;      ///< mean of (wait+run)/run
  double mean_bounded_slowdown = 0;      ///< runtime floored at 10 s
  double mean_run = 0;
  double max_wait = 0;
  double mean_dedicated_delay = 0;  ///< mean start delay of dedicated jobs
  std::uint64_t dedicated_on_time = 0;  ///< dedicated jobs started exactly
                                        ///< at their requested start

  // --- run accounting ---
  std::uint64_t completed = 0;
  std::uint64_t killed = 0;
  std::uint64_t abandoned = 0;  ///< dropped by the kAbandon requeue policy
  sim::Time first_arrival = 0;
  sim::Time last_finish = 0;
  double makespan = 0;
  std::uint64_t cycles = 0;    ///< scheduler invocations
  std::uint64_t events = 0;    ///< simulation events processed
  /// How the run ended.  kCompleted unless a watchdog budget aborted it, in
  /// which case every metric above covers the partial run.
  sim::TerminationReason termination = sim::TerminationReason::kCompleted;
  std::uint64_t unfinished = 0;  ///< jobs not finished at a watchdog abort
  double offered_load = 0;     ///< load of the input workload
  EccStats ecc;                ///< ECC processor statistics (if enabled)
  FailureStats failure;        ///< fault-injection statistics (if enabled)
  /// Hot-path counters (DP calls / cache hits / fast-path exits) and wall
  /// timings.  Counters are deterministic; the wall fields are measurement
  /// only and never enter metrics CSVs.
  PerfStats perf;

  std::vector<JobOutcome> jobs;  ///< per-job detail (always filled)

  /// Full audit trace; null unless EngineConfig::record_trace was set.
  std::shared_ptr<const class ScheduleTrace> trace;
};

}  // namespace es::sched
