// First-come-first-served baseline: starts queue-head jobs in order and
// blocks on the first one that does not fit.  Included as the reference
// point the backfilling literature (and the paper's related-work section)
// measures against.
#pragma once

#include "sched/scheduler.hpp"

namespace es::sched {

class Fcfs : public Scheduler {
 public:
  std::string name() const override { return "FCFS"; }
  void cycle(SchedulerContext& ctx) override;
};

}  // namespace es::sched
