// Elastic Control Command processor (paper sections III-C and IV).
//
// ECCs arrive on their own 'elastic control queue' and are applied FCFS.
// An ET/RT command changes the target job's user-estimated execution time —
// and therefore its kill-by time and true runtime — whether the job is still
// queued or already running.  EP/RP (the paper's future-work resource
// dimension, which CWF already encodes) resize *queued* jobs; a running job
// cannot change shape without migration on a BlueGene-class machine.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/job_state.hpp"
#include "workload/ecc.hpp"

namespace es::sched {

/// Outcome of applying one command, for logging/metrics.
enum class EccOutcome {
  kAppliedQueued,     ///< adjusted a waiting job
  kAppliedRunning,    ///< adjusted a running job (finish event rescheduled)
  kResizedRunning,    ///< EP/RP resized a running job (engine must resize
                      ///< the allocation and reschedule completion)
  kCompletedJob,      ///< RT shrank a running job to/below its elapsed time
  kRejectedFinished,  ///< target already completed/killed
  kRejectedShape,     ///< EP/RP on a running job (rigid mode)
  kRejectedBounds,    ///< would leave the job with no time / invalid size,
                      ///< a growth that does not fit the free pool, or a
                      ///< malformed (negative / non-finite) amount
  kSkippedConflict,   ///< contradicts an earlier same-instant command for
                      ///< the same job in the same dimension (first wins)
};

/// Statistics over all processed commands.
struct EccStats {
  std::uint64_t processed = 0;
  std::uint64_t extensions = 0;
  std::uint64_t reductions = 0;
  std::uint64_t rejected = 0;
  std::uint64_t unknown_job = 0;   ///< commands naming a job id that is not
                                   ///< in the workload (skipped with a
                                   ///< warning; tallied by the engine's
                                   ///< EccAuditObserver attachment)
  std::uint64_t after_finish = 0;  ///< commands arriving after the target
                                   ///< completed / was killed / abandoned
  std::uint64_t running_resizes = 0;  ///< EP/RP applied to running jobs
  std::uint64_t conflicts = 0;  ///< same-instant contradictory/duplicate
                                ///< commands skipped (first per job and
                                ///< dimension wins; counted separately
                                ///< from `rejected`)
  double time_added = 0;    ///< net seconds added by ET
  double time_removed = 0;  ///< net seconds removed by RT
  double procs_added = 0;   ///< net processors added by EP
  double procs_removed = 0; ///< net processors removed by RP
};

/// Applies commands to job state.  The engine owns the instance and invokes
/// it at each command's issue time (the simulation's event order *is* the
/// FCFS elastic control queue).
class EccProcessor {
 public:
  /// `machine_total`/`granularity` bound EP/RP resizing.
  EccProcessor(int machine_total, int granularity)
      : machine_total_(machine_total), granularity_(granularity) {}

  /// Enables EP/RP on *running* jobs (the paper's section-VI extension,
  /// implemented work-conservingly: remaining work procs x time is
  /// preserved, so shrinking stretches the remaining runtime and growing
  /// compresses it).  Off by default — BlueGene-class machines cannot
  /// reshape a running partition without migration.
  void set_running_resize(bool enabled) { running_resize_ = enabled; }
  bool running_resize() const { return running_resize_; }

  /// Applies `ecc` to `job` at time `now`.  `free_procs` is the machine's
  /// current free pool, needed to admit EP growth of a running job.  Does
  /// not touch the machine or the event queue: the returned outcome tells
  /// the engine whether to reschedule the job's finish event
  /// (kAppliedRunning), resize its allocation and reschedule
  /// (kResizedRunning), or finish it immediately (kCompletedJob).
  ///
  /// Same-instant conflict shield: when several commands target the same
  /// job at the same issue instant, the first one per dimension (time for
  /// ET/RT, processors for EP/RP) wins and the rest return
  /// kSkippedConflict — a contradictory extend/reduce pair or a duplicate
  /// in one CWF batch must not see order-dependent partial application.
  /// The engine dispatches commands in normalized (issue, job id) order,
  /// so same-group commands reach apply() contiguously.
  ///
  /// Malformed amounts (negative or non-finite) are rejected with
  /// kRejectedBounds rather than asserted: commands are external input.
  EccOutcome apply(const workload::Ecc& ecc, JobRun& job, sim::Time now,
                   int free_procs = 0);

  /// This ledger only covers commands that reached apply(); commands whose
  /// job id resolved to nothing never get here — the EccAuditObserver
  /// attachment counts those and merges them into the result's EccStats.
  const EccStats& stats() const { return stats_; }

  /// Serializable mutable state: the stats ledger plus the same-instant
  /// conflict-shield group.  A snapshot can land *between* two commands of
  /// one same-instant batch, so the shield must survive restore or the
  /// first resumed command of the batch would wrongly win its dimension.
  struct State {
    EccStats stats;
    workload::JobId group_job = 0;
    sim::Time group_time = -1;
    bool group_time_dim = false;
    bool group_proc_dim = false;
  };

  State save_state() const {
    return State{stats_, group_job_, group_time_, group_time_dim_,
                 group_proc_dim_};
  }

  void restore_state(const State& state) {
    stats_ = state.stats;
    group_job_ = state.group_job;
    group_time_ = state.group_time;
    group_time_dim_ = state.group_time_dim;
    group_proc_dim_ = state.group_proc_dim;
  }

 private:
  EccOutcome resize(const workload::Ecc& ecc, JobRun& job, sim::Time now,
                    int free_procs);

  int machine_total_;
  int granularity_;
  bool running_resize_ = false;
  EccStats stats_;
  // Same-instant conflict-shield state: the (job, instant) group of the
  // last command and which dimensions it already claimed.
  workload::JobId group_job_ = 0;
  sim::Time group_time_ = -1;
  bool group_time_dim_ = false;
  bool group_proc_dim_ = false;
};

}  // namespace es::sched
