// Hot-path performance counters: how often the knapsack kernels ran and how
// often the fast paths answered instead of the full DP table.
//
// Defined at the sched layer so both producers (the es_core DP kernels,
// which sit above sched) and the consumer (the engine, which copies a
// per-run delta into SimulationResult) can see the type without a layering
// cycle.  Counters are plain tallies — they never influence scheduling, so
// enabling them cannot perturb a schedule.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hpp"

namespace es::sched {

/// Tallies of the Basic_DP / Reservation_DP kernel invocations.
struct DpCounters {
  std::uint64_t calls = 0;       ///< kernel entries (any resolution path)
  std::uint64_t fast_path = 0;   ///< answered by the trivial-empty or
                                 ///< fits-free-capacity exits
                                 ///  (calls == fast_path + cache_hits
                                 ///   + table_runs, always)
  std::uint64_t cache_hits = 0;  ///< answered by the DP result cache
  std::uint64_t table_runs = 0;  ///< full table fills (the expensive path)
  std::uint64_t table_cells = 0; ///< DP cells touched across table fills

  // Speculative cycle pipelining (PR 9).  A speculative fill warms the
  // result cache off-thread; a hit on a warmed entry counts in BOTH
  // cache_hits (preserving the calls identity above) and spec_hits.  These
  // tallies depend on thread timing (whether the speculation settled before
  // the cycle needed it), so they are diagnostics only — excluded from
  // result fingerprints and snapshot serialization.
  std::uint64_t spec_launched = 0;   ///< speculative fills submitted
  std::uint64_t spec_hits = 0;       ///< cache hits served by a speculation
  std::uint64_t spec_discarded = 0;  ///< speculations never hit (stale key)
  /// Wall time inside full table fills (speculative fills excluded — they
  /// overlap the event drain by design).  Measurement, not simulation
  /// state; with table_runs this yields ns-per-DP-invocation.
  double table_seconds = 0;

  DpCounters& operator+=(const DpCounters& other) {
    calls += other.calls;
    fast_path += other.fast_path;
    cache_hits += other.cache_hits;
    table_runs += other.table_runs;
    table_cells += other.table_cells;
    spec_launched += other.spec_launched;
    spec_hits += other.spec_hits;
    spec_discarded += other.spec_discarded;
    table_seconds += other.table_seconds;
    return *this;
  }
  DpCounters operator-(const DpCounters& other) const {
    DpCounters delta;
    delta.calls = calls - other.calls;
    delta.fast_path = fast_path - other.fast_path;
    delta.cache_hits = cache_hits - other.cache_hits;
    delta.table_runs = table_runs - other.table_runs;
    delta.table_cells = table_cells - other.table_cells;
    delta.spec_launched = spec_launched - other.spec_launched;
    delta.spec_hits = spec_hits - other.spec_hits;
    delta.spec_discarded = spec_discarded - other.spec_discarded;
    delta.table_seconds = table_seconds - other.table_seconds;
    return delta;
  }
};

/// Per-cycle shape counters collected by the CycleStatsObserver attachment
/// (sched/attach/cycle_stats_observer.hpp) when
/// EngineConfig::collect_cycle_stats is set.  Plain tallies over fixed
/// log2-bucketed histograms: POD arrays, no heap, no influence on the
/// schedule.  Bucket b of a histogram counts cycles whose value v has
/// std::bit_width(v) == b, i.e. bucket 0 holds v == 0, bucket 1 holds
/// v == 1, bucket 2 holds 2..3, bucket 3 holds 4..7 and so on, with the
/// last bucket absorbing everything larger.
struct CycleStats {
  static constexpr int kBuckets = 16;

  std::uint64_t cycles = 0;           ///< scheduling cycles observed
  std::uint64_t starts = 0;           ///< job starts observed
  std::uint64_t backfill_starts = 0;  ///< starts past the batch-queue head
  std::uint64_t max_queue_depth = 0;  ///< peak batch-queue depth at a cycle
  std::uint64_t queue_depth[kBuckets] = {};  ///< batch depth at cycle begin
  std::uint64_t dp_calls[kBuckets] = {};     ///< DP kernel calls per cycle

  /// Histogram bucket for `value` (see the class comment for the ranges).
  static int bucket_of(std::uint64_t value) {
    const int width = static_cast<int>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }
  /// Inclusive lower bound of bucket `b`: 0, 1, 2, 4, 8, ...
  static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Inclusive upper bound of bucket `b`: 0, 1, 3, 7, 15, ...
  static std::uint64_t bucket_hi(int b) {
    return b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
  }

  CycleStats& operator+=(const CycleStats& other) {
    cycles += other.cycles;
    starts += other.starts;
    backfill_starts += other.backfill_starts;
    max_queue_depth = max_queue_depth > other.max_queue_depth
                          ? max_queue_depth
                          : other.max_queue_depth;
    for (int b = 0; b < kBuckets; ++b) {
      queue_depth[b] += other.queue_depth[b];
      dp_calls[b] += other.dp_calls[b];
    }
    return *this;
  }
};

/// Per-pool fairness accounting collected by the FairnessObserver
/// attachment (sched/attach/fairness_observer.hpp) when
/// EngineConfig::fairshare.collect_stats is set.
struct PoolFairnessStats {
  std::string name;
  double weight = 1.0;
  double entitlement_share = 0;  ///< weight / sum(weights)
  std::uint64_t started = 0;     ///< queueing waits recorded (per attempt)
  double wait_mean = 0;          ///< seconds from (re)queue to start
  double wait_p50 = 0;
  double wait_p99 = 0;
  double wait_max = 0;
  /// Sim-seconds the pool had at least one batch job waiting.
  double backlogged_seconds = 0;
  /// Mean fraction of the machine the pool held while backlogged.
  double service_share = 0;
  /// Share satisfaction x_p = min(1, service_share / entitlement_share);
  /// 1 for pools that were never backlogged (nothing to be starved of).
  double satisfaction = 1.0;
};

/// Fairness summary: Jain's index J = (sum x)^2 / (n * sum x^2) over the
/// satisfaction of pools that experienced backlog (1.0 = perfectly fair).
struct FairnessStats {
  bool collected = false;
  double jain = 1.0;
  std::vector<PoolFairnessStats> pools;
};

/// Per-run performance breakdown attached to SimulationResult.  Wall-clock
/// fields are measurement, not simulation state: they vary run to run and
/// never feed back into scheduling decisions or metrics CSVs.
struct PerfStats {
  DpCounters dp;
  sim::EventQueueCounters events;  ///< kernel traffic for this run's queue
  CycleStats cycle;  ///< all-zero unless EngineConfig::collect_cycle_stats
  double wall_seconds = 0;   ///< whole run() wall time
  double cycle_seconds = 0;  ///< wall time inside policy cycle() calls
  /// Process peak RSS in bytes at run end (util::peak_rss_bytes).
  /// Process-global high-water: attribute to a run only when it is the
  /// first/only run in the process.  0 where the OS lacks the counter.
  std::uint64_t peak_rss_bytes = 0;
  /// Empty unless EngineConfig::fairshare.collect_stats.
  FairnessStats fairness;

  /// Fraction of kernel calls answered from the result cache.
  double dp_cache_hit_rate() const {
    return dp.calls == 0
               ? 0.0
               : static_cast<double>(dp.cache_hits) /
                     static_cast<double>(dp.calls);
  }
};

}  // namespace es::sched
