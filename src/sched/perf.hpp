// Hot-path performance counters: how often the knapsack kernels ran and how
// often the fast paths answered instead of the full DP table.
//
// Defined at the sched layer so both producers (the es_core DP kernels,
// which sit above sched) and the consumer (the engine, which copies a
// per-run delta into SimulationResult) can see the type without a layering
// cycle.  Counters are plain tallies — they never influence scheduling, so
// enabling them cannot perturb a schedule.
#pragma once

#include <cstdint>

#include "sim/event_queue.hpp"

namespace es::sched {

/// Tallies of the Basic_DP / Reservation_DP kernel invocations.
struct DpCounters {
  std::uint64_t calls = 0;       ///< kernel entries (any resolution path)
  std::uint64_t fast_path = 0;   ///< answered by the trivial-empty or
                                 ///< fits-free-capacity exits
                                 ///  (calls == fast_path + cache_hits
                                 ///   + table_runs, always)
  std::uint64_t cache_hits = 0;  ///< answered by the DP result cache
  std::uint64_t table_runs = 0;  ///< full table fills (the expensive path)
  std::uint64_t table_cells = 0; ///< DP cells touched across table fills

  DpCounters& operator+=(const DpCounters& other) {
    calls += other.calls;
    fast_path += other.fast_path;
    cache_hits += other.cache_hits;
    table_runs += other.table_runs;
    table_cells += other.table_cells;
    return *this;
  }
  DpCounters operator-(const DpCounters& other) const {
    DpCounters delta;
    delta.calls = calls - other.calls;
    delta.fast_path = fast_path - other.fast_path;
    delta.cache_hits = cache_hits - other.cache_hits;
    delta.table_runs = table_runs - other.table_runs;
    delta.table_cells = table_cells - other.table_cells;
    return delta;
  }
};

/// Per-run performance breakdown attached to SimulationResult.  Wall-clock
/// fields are measurement, not simulation state: they vary run to run and
/// never feed back into scheduling decisions or metrics CSVs.
struct PerfStats {
  DpCounters dp;
  sim::EventQueueCounters events;  ///< kernel traffic for this run's queue
  double wall_seconds = 0;   ///< whole run() wall time
  double cycle_seconds = 0;  ///< wall time inside policy cycle() calls

  /// Fraction of kernel calls answered from the result cache.
  double dp_cache_hit_rate() const {
    return dp.calls == 0
               ? 0.0
               : static_cast<double>(dp.cache_hits) /
                     static_cast<double>(dp.calls);
  }
};

}  // namespace es::sched
