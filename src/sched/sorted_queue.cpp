#include "sched/sorted_queue.hpp"

#include <algorithm>
#include <vector>

namespace es::sched {

std::string SortedQueue::name() const {
  switch (order_) {
    case QueueOrder::kShortestFirst: return "SJF";
    case QueueOrder::kSmallestFirst: return "SMALLEST";
    case QueueOrder::kLargestFirst: return "LJF";
  }
  return "?";
}

void SortedQueue::cycle(SchedulerContext& ctx) {
  std::vector<JobRun*> view(ctx.batch->begin(), ctx.batch->end());
  // Stable sort keeps arrival order among ties, preserving FIFO fairness
  // within a priority class.
  switch (order_) {
    case QueueOrder::kShortestFirst:
      std::stable_sort(view.begin(), view.end(),
                       [](const JobRun* a, const JobRun* b) {
                         return a->req_time < b->req_time;
                       });
      break;
    case QueueOrder::kSmallestFirst:
      std::stable_sort(view.begin(), view.end(),
                       [](const JobRun* a, const JobRun* b) {
                         return a->num < b->num;
                       });
      break;
    case QueueOrder::kLargestFirst:
      std::stable_sort(view.begin(), view.end(),
                       [](const JobRun* a, const JobRun* b) {
                         return a->num > b->num;
                       });
      break;
  }
  for (JobRun* job : view) {
    if (ctx.alloc_of(*job) <= ctx.free()) ctx.start(job);
  }
}

}  // namespace es::sched
